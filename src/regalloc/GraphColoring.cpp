//===- regalloc/GraphColoring.cpp - Iterated register coalescing ----------===//
//
// Data layout: the per-round state lives in flat arrays carved from one
// bump Arena that allocateGraphColoring reuses (reset, capacity retained)
// across spill rounds. Edge membership is a packed BitMatrix; the initial
// adjacency is a CSR array built in one pass from liveness (per-node
// neighbor order identical to the old push_back discovery order); edges
// added by coalescing go into per-node overflow chains. The simplify/
// freeze/spill worklists and the move worklists are IndexSets — ordered
// bit sets whose first() is the minimum element, exactly the
// *std::set::begin() the old implementation picked — so every worklist
// decision, and therefore the full allocation result, is bit-identical to
// the previous std::set/std::unordered_set layout (guarded by
// tests/alloc_identity_test).
//
//===----------------------------------------------------------------------===//

#include "regalloc/GraphColoring.h"

#include "adt/Arena.h"
#include "adt/BitMatrix.h"
#include "adt/IndexSet.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"

#include <algorithm>
#include <atomic>
#include <limits>

using namespace dra;

namespace {

bool IrcSelfCheckEnabled = false;
std::atomic<size_t> IrcSelfCheckViolationCount{0};

/// Round-reusable scratch: the arena plus the few growable buffers whose
/// size is only known mid-build. Owned by allocateGraphColoring so spill
/// rounds after the first allocate nothing.
struct IrcScratch {
  Arena A;
  /// Initial interference edges in discovery order (drives the CSR fill).
  std::vector<std::pair<RegId, RegId>> Edges;
  /// Overflow adjacency pool: per-node chains for edges added by combine.
  struct ExtraEdge {
    RegId Nbr;
    int32_t Next;
  };
  std::vector<ExtraEdge> ExtraPool;
  /// Overflow move-list pool (move lists concatenated by combine).
  struct ExtraMove {
    uint32_t Move;
    int32_t Next;
  };
  std::vector<ExtraMove> MoveExtraPool;
  std::vector<uint32_t> MoveSnap; // freezeMoves snapshot
  std::vector<RegId> SelectStack;
  std::vector<uint8_t> UsedColors;
  std::vector<unsigned> OkColors;

  void beginRound() {
    A.reset();
    Edges.clear();
    ExtraPool.clear();
    MoveExtraPool.clear();
    MoveSnap.clear();
    SelectStack.clear();
  }
};

/// One build/color round of iterated register coalescing.
class IrcRound {
public:
  IrcRound(Function &F, unsigned K, SelectHook *Hook,
           const std::vector<uint8_t> &IsSpillTemp, AllocResult &Stats,
           IrcScratch &S)
      : F(F), K(K), Hook(Hook), IsSpillTemp(IsSpillTemp), Stats(Stats),
        S(S), A(S.A) {}

  /// Runs one round. Returns the set of actual-spill virtual registers
  /// (empty means a complete coloring was produced in ColorOf).
  std::vector<RegId> run(std::vector<RegId> &ColorOutParam);

private:
  Function &F;
  unsigned K;
  SelectHook *Hook;
  const std::vector<uint8_t> &IsSpillTemp;
  AllocResult &Stats; // shared event counters, summed across rounds
  IrcScratch &S;
  Arena &A;

  uint32_t NumNodes = 0;
  uint32_t NumMoves = 0;

  // Graph: bit-matrix membership + CSR initial adjacency + overflow
  // chains for coalesce-time edges.
  BitMatrix AdjSet;
  uint32_t *AdjOff = nullptr; // NumNodes + 1 offsets into AdjNbrs
  RegId *AdjNbrs = nullptr;
  int32_t *ExtraHead = nullptr; // per node, -1 terminated chain
  unsigned *Degree = nullptr;

  // Moves (indices into MoveDst/MoveSrc), CSR per-node lists + overflow.
  RegId *MoveDst = nullptr;
  RegId *MoveSrc = nullptr;
  uint32_t *MoveOff = nullptr;
  uint32_t *MoveIdxs = nullptr;
  int32_t *MoveExtraHead = nullptr;
  enum MoveState : uint8_t {
    MSWorklist,
    MSActive,
    MSCoalesced,
    MSConstrained,
    MSFrozen
  };
  uint8_t *MoveStates = nullptr;
  IndexSet WorklistMoves;
  IndexSet ActiveMoves;

  // Node worklists: ordered index sets (first() == minimum element, the
  // exact pick order of the previous std::set implementation).
  IndexSet SimplifyWorklist;
  IndexSet FreezeWorklist;
  IndexSet SpillWorklist;
  IndexSet CoalescedNodes;
  IndexSet SpilledNodes;
  IndexSet ColoredNodes;
  uint8_t *OnSelectStack = nullptr;
  RegId *Alias = nullptr;
  RegId *ColorOf = nullptr;
  double *SpillCost = nullptr;

  // briggsConservative scratch: epoch stamps dedup the merged neighbor
  // set without a per-call container.
  uint32_t *NbrStamp = nullptr;
  uint32_t BriggsStamp = 0;

  void build();
  void computeSpillCosts();
  void addEdge(RegId U, RegId V);
  void makeWorklists();

  /// Live (not selected, not coalesced) neighbors of N: CSR row then
  /// overflow chain. Callbacks may add edges/moves to nodes other than N.
  template <typename FnT> void forEachAdjacent(RegId N, FnT Fn) const {
    for (uint32_t I = AdjOff[N], E = AdjOff[N + 1]; I != E; ++I) {
      RegId M = AdjNbrs[I];
      if (!OnSelectStack[M] && !CoalescedNodes.contains(M))
        Fn(M);
    }
    for (int32_t I = ExtraHead[N]; I != -1; I = S.ExtraPool[I].Next) {
      RegId M = S.ExtraPool[I].Nbr;
      if (!OnSelectStack[M] && !CoalescedNodes.contains(M))
        Fn(M);
    }
  }

  /// All recorded neighbors of N, unfiltered (assignColors, self-check).
  template <typename FnT> void forEachRawAdjacent(RegId N, FnT Fn) const {
    for (uint32_t I = AdjOff[N], E = AdjOff[N + 1]; I != E; ++I)
      Fn(AdjNbrs[I]);
    for (int32_t I = ExtraHead[N]; I != -1; I = S.ExtraPool[I].Next)
      Fn(S.ExtraPool[I].Nbr);
  }

  /// Worklist-or-active moves of N (the nodeMoves filter), CSR row then
  /// overflow chain. May visit a move twice if combine concatenated a
  /// list already containing it (same as the old concatenated vectors —
  /// every consumer is idempotent).
  template <typename FnT> void forEachNodeMove(RegId N, FnT Fn) const {
    for (uint32_t I = MoveOff[N], E = MoveOff[N + 1]; I != E; ++I) {
      uint32_t M = MoveIdxs[I];
      if (MoveStates[M] == MSWorklist || MoveStates[M] == MSActive)
        Fn(M);
    }
    for (int32_t I = MoveExtraHead[N]; I != -1;
         I = S.MoveExtraPool[I].Next) {
      uint32_t M = S.MoveExtraPool[I].Move;
      if (MoveStates[M] == MSWorklist || MoveStates[M] == MSActive)
        Fn(M);
    }
  }

  bool moveRelated(RegId N) const;
  void simplify();
  void decrementDegree(RegId M);
  void enableMoves(RegId N);
  void coalesce();
  void addWorkList(RegId U);
  bool georgeOk(RegId T, RegId U) const;
  bool briggsConservative(RegId U, RegId V);
  RegId getAlias(RegId N) const;
  void combine(RegId U, RegId V);
  void freeze();
  void freezeMoves(RegId U);
  void selectSpill();
  void assignColors();
  void checkInvariants() const;
};

void IrcRound::build() {
  NumNodes = F.NumRegs;
  AdjSet.init(A, NumNodes);
  Degree = A.allocZeroedArray<unsigned>(NumNodes);
  ExtraHead = A.allocArray<int32_t>(NumNodes);
  std::fill_n(ExtraHead, NumNodes, -1);
  MoveExtraHead = A.allocArray<int32_t>(NumNodes);
  std::fill_n(MoveExtraHead, NumNodes, -1);
  Alias = A.allocArray<RegId>(NumNodes);
  for (RegId N = 0; N != NumNodes; ++N)
    Alias[N] = N;
  ColorOf = A.allocArray<RegId>(NumNodes);
  std::fill_n(ColorOf, NumNodes, NoReg);
  OnSelectStack = A.allocZeroedArray<uint8_t>(NumNodes);
  NbrStamp = A.allocZeroedArray<uint32_t>(NumNodes);
  BriggsStamp = 0;

  SimplifyWorklist.init(A, NumNodes);
  FreezeWorklist.init(A, NumNodes);
  SpillWorklist.init(A, NumNodes);
  CoalescedNodes.init(A, NumNodes);
  SpilledNodes.init(A, NumNodes);
  ColoredNodes.init(A, NumNodes);

  F.recomputeCFG();
  Liveness LV = Liveness::compute(F, &A);

  // One pass over liveness: discover interference edges (bit-matrix
  // membership, pairs recorded in discovery order) and moves.
  std::vector<std::pair<RegId, RegId>> &Edges = S.Edges;
  std::vector<RegId> MoveDsts, MoveSrcs;
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    const BasicBlock &BB = F.Blocks[B];
    LV.forEachInstBackward(F, B, [&](size_t Idx, const BitVector &LiveAfter) {
      const Instruction &I = BB.Insts[Idx];
      bool IsMove = I.Op == Opcode::Mov && I.Dst != I.Src1;
      if (IsMove) {
        MoveDsts.push_back(I.Dst);
        MoveSrcs.push_back(I.Src1);
      }
      RegId Def = I.def();
      if (Def == NoReg)
        return;
      LiveAfter.forEach([&](size_t Live) {
        RegId L = static_cast<RegId>(Live);
        if (IsMove && L == I.Src1)
          return;
        if (Def == L || AdjSet.test(Def, L))
          return;
        AdjSet.setSym(Def, L);
        Edges.emplace_back(Def, L);
        ++Degree[Def];
        ++Degree[L];
      });
    });
  }

  // CSR adjacency from the recorded edges: per-node neighbor order is the
  // discovery order, matching the old per-node push_back sequence.
  AdjOff = A.allocArray<uint32_t>(NumNodes + 1);
  AdjOff[0] = 0;
  for (RegId N = 0; N != NumNodes; ++N)
    AdjOff[N + 1] = AdjOff[N] + Degree[N];
  AdjNbrs = A.allocArray<RegId>(2 * Edges.size());
  uint32_t *Fill = A.allocZeroedArray<uint32_t>(NumNodes);
  for (const auto &[U, V] : Edges) {
    AdjNbrs[AdjOff[U] + Fill[U]++] = V;
    AdjNbrs[AdjOff[V] + Fill[V]++] = U;
  }

  // CSR move lists, same fill discipline.
  NumMoves = static_cast<uint32_t>(MoveDsts.size());
  MoveDst = A.allocArray<RegId>(NumMoves);
  MoveSrc = A.allocArray<RegId>(NumMoves);
  std::copy_n(MoveDsts.data(), NumMoves, MoveDst);
  std::copy_n(MoveSrcs.data(), NumMoves, MoveSrc);
  uint32_t *MoveCount = A.allocZeroedArray<uint32_t>(NumNodes);
  for (uint32_t M = 0; M != NumMoves; ++M) {
    ++MoveCount[MoveDst[M]];
    ++MoveCount[MoveSrc[M]];
  }
  MoveOff = A.allocArray<uint32_t>(NumNodes + 1);
  MoveOff[0] = 0;
  for (RegId N = 0; N != NumNodes; ++N)
    MoveOff[N + 1] = MoveOff[N] + MoveCount[N];
  MoveIdxs = A.allocArray<uint32_t>(2 * NumMoves);
  uint32_t *MoveFill = A.allocZeroedArray<uint32_t>(NumNodes);
  for (uint32_t M = 0; M != NumMoves; ++M) {
    MoveIdxs[MoveOff[MoveDst[M]] + MoveFill[MoveDst[M]]++] = M;
    MoveIdxs[MoveOff[MoveSrc[M]] + MoveFill[MoveSrc[M]]++] = M;
  }
  MoveStates = A.allocZeroedArray<uint8_t>(NumMoves); // all MSWorklist
  WorklistMoves.init(A, NumMoves);
  for (uint32_t M = 0; M != NumMoves; ++M)
    WorklistMoves.insert(M);
  ActiveMoves.init(A, NumMoves);
}

void IrcRound::computeSpillCosts() {
  SpillCost = A.allocZeroedArray<double>(NumNodes);
  LoopInfo LI = LoopInfo::compute(F);
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    double Freq = LI.frequency(B);
    for (const Instruction &I : F.Blocks[B].Insts) {
      RegId Def = I.def();
      if (Def != NoReg)
        SpillCost[Def] += Freq;
      RegId Uses[2];
      unsigned NumUses;
      I.uses(Uses, NumUses);
      for (unsigned U = 0; U != NumUses; ++U)
        SpillCost[Uses[U]] += Freq;
    }
  }
  // Spilling a temporary created by a previous spill round would loop
  // forever; make them effectively unspillable.
  for (RegId N = 0; N != NumNodes; ++N)
    if (N < IsSpillTemp.size() && IsSpillTemp[N])
      SpillCost[N] = std::numeric_limits<double>::infinity();
}

void IrcRound::addEdge(RegId U, RegId V) {
  if (U == V || AdjSet.test(U, V))
    return;
  AdjSet.setSym(U, V);
  S.ExtraPool.push_back({V, ExtraHead[U]});
  ExtraHead[U] = static_cast<int32_t>(S.ExtraPool.size() - 1);
  S.ExtraPool.push_back({U, ExtraHead[V]});
  ExtraHead[V] = static_cast<int32_t>(S.ExtraPool.size() - 1);
  ++Degree[U];
  ++Degree[V];
}

void IrcRound::makeWorklists() {
  for (RegId N = 0; N != NumNodes; ++N) {
    if (Degree[N] >= K)
      SpillWorklist.insert(N);
    else if (moveRelated(N))
      FreezeWorklist.insert(N);
    else
      SimplifyWorklist.insert(N);
  }
}

bool IrcRound::moveRelated(RegId N) const {
  for (uint32_t I = MoveOff[N], E = MoveOff[N + 1]; I != E; ++I) {
    uint8_t St = MoveStates[MoveIdxs[I]];
    if (St == MSWorklist || St == MSActive)
      return true;
  }
  for (int32_t I = MoveExtraHead[N]; I != -1; I = S.MoveExtraPool[I].Next) {
    uint8_t St = MoveStates[S.MoveExtraPool[I].Move];
    if (St == MSWorklist || St == MSActive)
      return true;
  }
  return false;
}

void IrcRound::simplify() {
  ++Stats.SimplifySteps;
  RegId N = SimplifyWorklist.first();
  SimplifyWorklist.erase(N);
  S.SelectStack.push_back(N);
  OnSelectStack[N] = 1;
  forEachAdjacent(N, [&](RegId M) { decrementDegree(M); });
}

void IrcRound::decrementDegree(RegId M) {
  unsigned D = Degree[M];
  Degree[M] = D - 1;
  if (D != K)
    return;
  enableMoves(M);
  forEachAdjacent(M, [&](RegId T) { enableMoves(T); });
  SpillWorklist.erase(M);
  if (moveRelated(M))
    FreezeWorklist.insert(M);
  else
    SimplifyWorklist.insert(M);
}

void IrcRound::enableMoves(RegId N) {
  forEachNodeMove(N, [&](uint32_t MoveIdx) {
    if (MoveStates[MoveIdx] != MSActive)
      return;
    MoveStates[MoveIdx] = MSWorklist;
    ActiveMoves.erase(MoveIdx);
    WorklistMoves.insert(MoveIdx);
  });
}

bool IrcRound::georgeOk(RegId T, RegId U) const {
  return Degree[T] < K || AdjSet.test(T, U);
}

bool IrcRound::briggsConservative(RegId U, RegId V) {
  // Count distinct significant-degree neighbors of the combined node.
  // Epoch-stamp dedup; the count is order-independent, so no sorted
  // container is needed.
  ++BriggsStamp;
  unsigned Significant = 0;
  auto Visit = [&](RegId T) {
    if (NbrStamp[T] == BriggsStamp)
      return;
    NbrStamp[T] = BriggsStamp;
    unsigned D = Degree[T];
    // Merging U and V turns a neighbor of both into a neighbor of one.
    if (AdjSet.test(T, U) && AdjSet.test(T, V))
      --D;
    Significant += D >= K;
  };
  forEachAdjacent(U, Visit);
  forEachAdjacent(V, Visit);
  return Significant < K;
}

RegId IrcRound::getAlias(RegId N) const {
  while (CoalescedNodes.contains(N))
    N = Alias[N];
  return N;
}

void IrcRound::coalesce() {
  uint32_t MoveIdx = WorklistMoves.first();
  WorklistMoves.erase(MoveIdx);
  RegId X = getAlias(MoveDst[MoveIdx]);
  RegId Y = getAlias(MoveSrc[MoveIdx]);
  RegId U = X, V = Y;
  if (U == V) {
    MoveStates[MoveIdx] = MSCoalesced;
    addWorkList(U);
    return;
  }
  if (AdjSet.test(U, V)) {
    ++Stats.CoalesceConstrained;
    MoveStates[MoveIdx] = MSConstrained;
    addWorkList(U);
    addWorkList(V);
    return;
  }
  if (briggsConservative(U, V)) {
    ++Stats.CoalesceBriggs;
    MoveStates[MoveIdx] = MSCoalesced;
    combine(U, V);
    addWorkList(U);
    return;
  }
  // George test as a fallback: every neighbor of V is OK with U.
  bool GeorgeAll = true;
  forEachAdjacent(V, [&](RegId T) { GeorgeAll &= georgeOk(T, U); });
  if (GeorgeAll) {
    ++Stats.CoalesceGeorge;
    MoveStates[MoveIdx] = MSCoalesced;
    combine(U, V);
    addWorkList(U);
    return;
  }
  ++Stats.CoalesceDeferred;
  MoveStates[MoveIdx] = MSActive;
  ActiveMoves.insert(MoveIdx);
}

void IrcRound::addWorkList(RegId U) {
  if (!moveRelated(U) && Degree[U] < K) {
    FreezeWorklist.erase(U);
    SimplifyWorklist.insert(U);
  }
}

void IrcRound::combine(RegId U, RegId V) {
  if (FreezeWorklist.contains(V))
    FreezeWorklist.erase(V);
  else
    SpillWorklist.erase(V);
  CoalescedNodes.insert(V);
  Alias[V] = U;
  // Concatenate V's move list onto U's (duplicates allowed, as with the
  // old vector append; consumers are idempotent).
  for (uint32_t I = MoveOff[V], E = MoveOff[V + 1]; I != E; ++I) {
    S.MoveExtraPool.push_back({MoveIdxs[I], MoveExtraHead[U]});
    MoveExtraHead[U] = static_cast<int32_t>(S.MoveExtraPool.size() - 1);
  }
  for (int32_t I = MoveExtraHead[V]; I != -1;
       I = S.MoveExtraPool[I].Next) {
    uint32_t M = S.MoveExtraPool[I].Move;
    S.MoveExtraPool.push_back({M, MoveExtraHead[U]});
    MoveExtraHead[U] = static_cast<int32_t>(S.MoveExtraPool.size() - 1);
  }
  enableMoves(V);
  forEachAdjacent(V, [&](RegId T) {
    addEdge(T, U);
    decrementDegree(T);
  });
  if (Degree[U] >= K && FreezeWorklist.contains(U)) {
    FreezeWorklist.erase(U);
    SpillWorklist.insert(U);
  }
}

void IrcRound::freeze() {
  ++Stats.FreezeSteps;
  RegId U = FreezeWorklist.first();
  FreezeWorklist.erase(U);
  SimplifyWorklist.insert(U);
  freezeMoves(U);
}

void IrcRound::freezeMoves(RegId U) {
  // Snapshot first (like the old materialized nodeMoves vector): freezing
  // mutates the states the filter reads.
  S.MoveSnap.clear();
  forEachNodeMove(U, [&](uint32_t MoveIdx) { S.MoveSnap.push_back(MoveIdx); });
  for (uint32_t MoveIdx : S.MoveSnap) {
    if (MoveStates[MoveIdx] == MSActive)
      ActiveMoves.erase(MoveIdx);
    else
      WorklistMoves.erase(MoveIdx);
    MoveStates[MoveIdx] = MSFrozen;
    RegId X = getAlias(MoveDst[MoveIdx]);
    RegId Y = getAlias(MoveSrc[MoveIdx]);
    RegId V = Y == getAlias(U) ? X : Y;
    if (!moveRelated(V) && Degree[V] < K && FreezeWorklist.contains(V)) {
      FreezeWorklist.erase(V);
      SimplifyWorklist.insert(V);
    }
  }
}

void IrcRound::selectSpill() {
  ++Stats.SpillSelects;
  // Chaitin heuristic: lowest cost / degree. Spill temporaries have
  // infinite cost so they are chosen only when nothing else remains.
  RegId BestNode = NoReg;
  double BestScore = std::numeric_limits<double>::infinity();
  SpillWorklist.forEach([&](uint32_t N) {
    double Score =
        SpillCost[N] / std::max(1.0, static_cast<double>(Degree[N]));
    if (BestNode == NoReg || Score < BestScore) {
      BestNode = N;
      BestScore = Score;
    }
  });
  assert(BestNode != NoReg && "selectSpill on empty worklist");
  SpillWorklist.erase(BestNode);
  SimplifyWorklist.insert(BestNode);
  freezeMoves(BestNode);
}

void IrcRound::assignColors() {
  // Members of each representative, for the select hook (only needed when
  // a hook will read them).
  std::vector<std::vector<RegId>> MembersOf;
  if (Hook) {
    MembersOf.resize(NumNodes);
    for (RegId N = 0; N != NumNodes; ++N)
      MembersOf[getAlias(N)].push_back(N);
  }

  SelectContext Ctx;
  Ctx.ColorOfVReg = [this](RegId V) {
    RegId Rep = getAlias(V);
    return ColorOf[Rep] == NoReg ? -1 : static_cast<int>(ColorOf[Rep]);
  };

  std::vector<uint8_t> &Used = S.UsedColors;
  std::vector<unsigned> &OkColors = S.OkColors;
  while (!S.SelectStack.empty()) {
    RegId N = S.SelectStack.back();
    S.SelectStack.pop_back();
    Used.assign(K, 0);
    forEachRawAdjacent(N, [&](RegId W) {
      RegId Rep = getAlias(W);
      if (ColoredNodes.contains(Rep))
        Used[ColorOf[Rep]] = 1;
    });
    OkColors.clear();
    for (unsigned C = 0; C != K; ++C)
      if (!Used[C])
        OkColors.push_back(C);
    OnSelectStack[N] = 0;
    if (OkColors.empty()) {
      SpilledNodes.insert(N);
      continue;
    }
    ColoredNodes.insert(N);
    unsigned Chosen = OkColors.front();
    if (Hook && OkColors.size() > 1) {
      Ctx.Node = N;
      Ctx.Members = &MembersOf[N];
      Ctx.OkColors = &OkColors;
      Chosen = Hook->choose(Ctx);
      assert(std::find(OkColors.begin(), OkColors.end(), Chosen) !=
                 OkColors.end() &&
             "hook returned an illegal color");
    }
    ColorOf[N] = Chosen;
  }
  CoalescedNodes.forEach([&](uint32_t N) {
    RegId Rep = getAlias(N);
    if (ColoredNodes.contains(Rep))
      ColorOf[N] = ColorOf[Rep];
  });
}

/// Test-only worklist invariants (see setIrcSelfCheck): every node sits in
/// exactly one of {simplify, freeze, spill, select stack, coalesced};
/// worklist members' Degree equals their live (non-stack, non-coalesced)
/// adjacency count; spill-worklist members have significant degree.
void IrcRound::checkInvariants() const {
  size_t Violations = 0;
  for (RegId N = 0; N != NumNodes; ++N) {
    unsigned Memberships = SimplifyWorklist.contains(N) +
                           FreezeWorklist.contains(N) +
                           SpillWorklist.contains(N) +
                           CoalescedNodes.contains(N) +
                           (OnSelectStack[N] != 0);
    Violations += Memberships != 1;
    if (SimplifyWorklist.contains(N) || FreezeWorklist.contains(N) ||
        SpillWorklist.contains(N)) {
      unsigned LiveAdj = 0;
      forEachRawAdjacent(N, [&](RegId M) {
        LiveAdj += !OnSelectStack[M] && !CoalescedNodes.contains(M);
      });
      Violations += LiveAdj != Degree[N];
    }
    if (SpillWorklist.contains(N))
      Violations += Degree[N] < K;
  }
  IrcSelfCheckViolationCount += Violations;
}

std::vector<RegId> IrcRound::run(std::vector<RegId> &ColorOutParam) {
  build();
  computeSpillCosts();
  if (Hook)
    Hook->beginFunction(F);
  makeWorklists();
  if (IrcSelfCheckEnabled)
    checkInvariants();
  for (;;) {
    if (!SimplifyWorklist.empty())
      simplify();
    else if (!WorklistMoves.empty())
      coalesce();
    else if (!FreezeWorklist.empty())
      freeze();
    else if (!SpillWorklist.empty())
      selectSpill();
    else
      break;
    if (IrcSelfCheckEnabled)
      checkInvariants();
  }
  assignColors();
  ColorOutParam.assign(ColorOf, ColorOf + NumNodes);
  // A spilled representative stands for every virtual register coalesced
  // into it; all of them must go to memory.
  std::vector<RegId> AllSpilled;
  for (RegId N = 0; N != NumNodes; ++N)
    if (SpilledNodes.contains(getAlias(N)))
      AllSpilled.push_back(N);
  return AllSpilled;
}

} // namespace

void dra::setIrcSelfCheck(bool Enable) { IrcSelfCheckEnabled = Enable; }

size_t dra::ircSelfCheckViolations() {
  return IrcSelfCheckViolationCount.load();
}

std::vector<RegId> dra::insertSpillCode(Function &F, RegId VReg) {
  uint32_t Slot = F.NumSpillSlots++;
  std::vector<RegId> NewTemps;
  for (BasicBlock &BB : F.Blocks) {
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(BB.Insts.size());
    for (Instruction I : BB.Insts) {
      // Loads before uses.
      RegId Uses[2];
      unsigned NumUses;
      I.uses(Uses, NumUses);
      bool UsesVReg = false;
      for (unsigned U = 0; U != NumUses; ++U)
        UsesVReg |= Uses[U] == VReg;
      if (UsesVReg) {
        RegId Tmp = F.makeReg();
        NewTemps.push_back(Tmp);
        Instruction Ld;
        Ld.Op = Opcode::SpillLd;
        Ld.Dst = Tmp;
        Ld.Imm = Slot;
        NewInsts.push_back(Ld);
        if (NumUses >= 1 && I.Src1 == VReg)
          I.Src1 = Tmp;
        if (NumUses >= 2 && I.Src2 == VReg)
          I.Src2 = Tmp;
      }
      // Store after def.
      if (I.def() == VReg) {
        RegId Tmp = F.makeReg();
        NewTemps.push_back(Tmp);
        I.Dst = Tmp;
        NewInsts.push_back(I);
        Instruction St;
        St.Op = Opcode::SpillSt;
        St.Src1 = Tmp;
        St.Imm = Slot;
        NewInsts.push_back(St);
        continue;
      }
      NewInsts.push_back(I);
    }
    BB.Insts = std::move(NewInsts);
  }
  return NewTemps;
}

void dra::rewriteToPhysical(Function &F, const std::vector<RegId> &ColorOf,
                            unsigned K, size_t *MovesRemoved) {
  for (BasicBlock &BB : F.Blocks) {
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(BB.Insts.size());
    for (Instruction I : BB.Insts) {
      for (unsigned Field = 0; Field != I.numRegFields(); ++Field) {
        RegId V = I.regField(Field);
        assert(ColorOf[V] != NoReg && "uncolored register after allocation");
        assert(ColorOf[V] < K && "color out of range");
        I.setRegField(Field, ColorOf[V]);
      }
      if (I.Op == Opcode::Mov && I.Dst == I.Src1) {
        if (MovesRemoved)
          ++*MovesRemoved;
        continue;
      }
      NewInsts.push_back(I);
    }
    BB.Insts = std::move(NewInsts);
  }
  F.NumRegs = K;
  F.recomputeCFG();
}

AllocResult dra::allocateGraphColoring(Function &F, unsigned K,
                                       SelectHook *Hook,
                                       unsigned MaxIterations,
                                       std::vector<RegId> *ColorOut,
                                       std::vector<StageSpan> *SubSpans) {
  assert(K >= 4 && "need at least four physical registers");
  AllocResult Result;
  std::vector<uint8_t> IsSpillTemp(F.NumRegs, 0);

  IrcScratch Scratch;
  std::vector<RegId> ColorOf;
  for (;;) {
    if (++Result.Iterations > MaxIterations) {
      Result.Success = false;
      return Result;
    }
    ScopedSpan Span(SubSpans, "alloc.round");
    Scratch.beginRound();
    IrcRound Round(F, K, Hook, IsSpillTemp, Result, Scratch);
    std::vector<RegId> Spilled = Round.run(ColorOf);
    if (Spilled.empty())
      break;
    Result.SpilledRanges += Spilled.size();
    for (RegId V : Spilled) {
      std::vector<RegId> Temps = insertSpillCode(F, V);
      IsSpillTemp.resize(F.NumRegs, 0);
      for (RegId T : Temps)
        IsSpillTemp[T] = 1;
    }
  }

  for (const BasicBlock &BB : F.Blocks)
    for (const Instruction &I : BB.Insts) {
      Result.SpillLoads += I.Op == Opcode::SpillLd;
      Result.SpillStores += I.Op == Opcode::SpillSt;
    }

  if (ColorOut) {
    // Leave F in virtual-register form for post-coloring refinement.
    *ColorOut = std::move(ColorOf);
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        Result.MovesRemaining += I.Op == Opcode::Mov;
    return Result;
  }

  rewriteToPhysical(F, ColorOf, K, &Result.MovesRemoved);
  for (const BasicBlock &BB : F.Blocks)
    for (const Instruction &I : BB.Insts)
      Result.MovesRemaining += I.Op == Opcode::Mov;
  return Result;
}
