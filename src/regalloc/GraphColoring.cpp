//===- regalloc/GraphColoring.cpp - Iterated register coalescing ----------===//

#include "regalloc/GraphColoring.h"

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "regalloc/InterferenceGraph.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace dra;

namespace {

/// One build/color round of iterated register coalescing.
class IrcRound {
public:
  IrcRound(Function &F, unsigned K, SelectHook *Hook,
           const std::vector<uint8_t> &IsSpillTemp, AllocResult &Stats)
      : F(F), K(K), Hook(Hook), IsSpillTemp(IsSpillTemp), Stats(Stats) {}

  /// Runs one round. Returns the set of actual-spill virtual registers
  /// (empty means a complete coloring was produced in ColorOf).
  std::vector<RegId> run(std::vector<RegId> &ColorOutParam);

private:
  Function &F;
  unsigned K;
  SelectHook *Hook;
  const std::vector<uint8_t> &IsSpillTemp;
  AllocResult &Stats; // shared event counters, summed across rounds

  uint32_t NumNodes = 0;

  // Graph.
  std::unordered_set<uint64_t> AdjSet;
  std::vector<std::vector<RegId>> AdjList;
  std::vector<unsigned> Degree;

  // Moves (indices into MoveInsts).
  struct MoveRec {
    RegId Dst, Src;
  };
  std::vector<MoveRec> MoveInsts;
  std::vector<std::vector<uint32_t>> MoveList; // Per node.
  enum class MoveState : uint8_t {
    Worklist,
    Active,
    Coalesced,
    Constrained,
    Frozen
  };
  std::vector<MoveState> MoveStates;
  std::set<uint32_t> WorklistMoves;
  std::set<uint32_t> ActiveMoves;

  // Node worklists (ordered sets for determinism).
  std::set<RegId> SimplifyWorklist;
  std::set<RegId> FreezeWorklist;
  std::set<RegId> SpillWorklist;
  std::set<RegId> CoalescedNodes;
  std::set<RegId> SpilledNodes;
  std::set<RegId> ColoredNodes;
  std::vector<RegId> SelectStack;
  std::vector<uint8_t> OnSelectStack;
  std::vector<RegId> Alias;
  std::vector<RegId> ColorOf;
  std::vector<double> SpillCost;

  static uint64_t edgeKey(RegId A, RegId B) {
    if (A > B)
      std::swap(A, B);
    return (static_cast<uint64_t>(A) << 32) | B;
  }

  void build();
  void computeSpillCosts();
  void addEdge(RegId U, RegId V);
  void makeWorklists();
  std::vector<RegId> adjacent(RegId N) const;
  std::vector<uint32_t> nodeMoves(RegId N) const;
  bool moveRelated(RegId N) const;
  void simplify();
  void decrementDegree(RegId M);
  void enableMoves(RegId N);
  void coalesce();
  void addWorkList(RegId U);
  bool georgeOk(RegId T, RegId U) const;
  bool briggsConservative(RegId U, RegId V) const;
  RegId getAlias(RegId N) const;
  void combine(RegId U, RegId V);
  void freeze();
  void freezeMoves(RegId U);
  void selectSpill();
  void assignColors();
};

void IrcRound::build() {
  NumNodes = F.NumRegs;
  AdjList.assign(NumNodes, {});
  Degree.assign(NumNodes, 0);
  MoveList.assign(NumNodes, {});
  Alias.resize(NumNodes);
  for (RegId N = 0; N != NumNodes; ++N)
    Alias[N] = N;
  ColorOf.assign(NumNodes, NoReg);
  OnSelectStack.assign(NumNodes, 0);

  F.recomputeCFG();
  Liveness LV = Liveness::compute(F);
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    const BasicBlock &BB = F.Blocks[B];
    LV.forEachInstBackward(F, B, [&](size_t Idx, const BitVector &LiveAfter) {
      const Instruction &I = BB.Insts[Idx];
      bool IsMove = I.Op == Opcode::Mov && I.Dst != I.Src1;
      if (IsMove) {
        uint32_t MoveIdx = static_cast<uint32_t>(MoveInsts.size());
        MoveInsts.push_back({I.Dst, I.Src1});
        MoveList[I.Dst].push_back(MoveIdx);
        MoveList[I.Src1].push_back(MoveIdx);
        MoveStates.push_back(MoveState::Worklist);
        WorklistMoves.insert(MoveIdx);
      }
      RegId Def = I.def();
      if (Def == NoReg)
        return;
      LiveAfter.forEach([&](size_t Live) {
        RegId L = static_cast<RegId>(Live);
        if (IsMove && L == I.Src1)
          return;
        addEdge(Def, L);
      });
    });
  }
}

void IrcRound::computeSpillCosts() {
  SpillCost.assign(NumNodes, 0.0);
  LoopInfo LI = LoopInfo::compute(F);
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    double Freq = LI.frequency(B);
    for (const Instruction &I : F.Blocks[B].Insts) {
      RegId Def = I.def();
      if (Def != NoReg)
        SpillCost[Def] += Freq;
      RegId Uses[2];
      unsigned NumUses;
      I.uses(Uses, NumUses);
      for (unsigned U = 0; U != NumUses; ++U)
        SpillCost[Uses[U]] += Freq;
    }
  }
  // Spilling a temporary created by a previous spill round would loop
  // forever; make them effectively unspillable.
  for (RegId N = 0; N != NumNodes; ++N)
    if (N < IsSpillTemp.size() && IsSpillTemp[N])
      SpillCost[N] = std::numeric_limits<double>::infinity();
}

void IrcRound::addEdge(RegId U, RegId V) {
  if (U == V)
    return;
  if (!AdjSet.insert(edgeKey(U, V)).second)
    return;
  AdjList[U].push_back(V);
  ++Degree[U];
  AdjList[V].push_back(U);
  ++Degree[V];
}

void IrcRound::makeWorklists() {
  for (RegId N = 0; N != NumNodes; ++N) {
    if (Degree[N] >= K)
      SpillWorklist.insert(N);
    else if (moveRelated(N))
      FreezeWorklist.insert(N);
    else
      SimplifyWorklist.insert(N);
  }
}

std::vector<RegId> IrcRound::adjacent(RegId N) const {
  std::vector<RegId> Result;
  for (RegId M : AdjList[N])
    if (!OnSelectStack[M] && !CoalescedNodes.count(M))
      Result.push_back(M);
  return Result;
}

std::vector<uint32_t> IrcRound::nodeMoves(RegId N) const {
  std::vector<uint32_t> Result;
  for (uint32_t MoveIdx : MoveList[N]) {
    MoveState S = MoveStates[MoveIdx];
    if (S == MoveState::Worklist || S == MoveState::Active)
      Result.push_back(MoveIdx);
  }
  return Result;
}

bool IrcRound::moveRelated(RegId N) const { return !nodeMoves(N).empty(); }

void IrcRound::simplify() {
  ++Stats.SimplifySteps;
  RegId N = *SimplifyWorklist.begin();
  SimplifyWorklist.erase(SimplifyWorklist.begin());
  SelectStack.push_back(N);
  OnSelectStack[N] = 1;
  for (RegId M : adjacent(N))
    decrementDegree(M);
}

void IrcRound::decrementDegree(RegId M) {
  unsigned D = Degree[M];
  Degree[M] = D - 1;
  if (D != K)
    return;
  enableMoves(M);
  for (RegId T : adjacent(M))
    enableMoves(T);
  SpillWorklist.erase(M);
  if (moveRelated(M))
    FreezeWorklist.insert(M);
  else
    SimplifyWorklist.insert(M);
}

void IrcRound::enableMoves(RegId N) {
  for (uint32_t MoveIdx : nodeMoves(N)) {
    if (MoveStates[MoveIdx] != MoveState::Active)
      continue;
    MoveStates[MoveIdx] = MoveState::Worklist;
    ActiveMoves.erase(MoveIdx);
    WorklistMoves.insert(MoveIdx);
  }
}

bool IrcRound::georgeOk(RegId T, RegId U) const {
  return Degree[T] < K || AdjSet.count(edgeKey(T, U)) != 0;
}

bool IrcRound::briggsConservative(RegId U, RegId V) const {
  // Count distinct significant-degree neighbors of the combined node.
  std::set<RegId> Neighbors;
  for (RegId T : adjacent(U))
    Neighbors.insert(T);
  for (RegId T : adjacent(V))
    Neighbors.insert(T);
  unsigned Significant = 0;
  for (RegId T : Neighbors) {
    unsigned D = Degree[T];
    // Merging U and V turns a neighbor of both into a neighbor of one.
    if (AdjSet.count(edgeKey(T, U)) != 0 && AdjSet.count(edgeKey(T, V)) != 0)
      --D;
    Significant += D >= K;
  }
  return Significant < K;
}

RegId IrcRound::getAlias(RegId N) const {
  while (CoalescedNodes.count(N))
    N = Alias[N];
  return N;
}

void IrcRound::coalesce() {
  uint32_t MoveIdx = *WorklistMoves.begin();
  WorklistMoves.erase(WorklistMoves.begin());
  RegId X = getAlias(MoveInsts[MoveIdx].Dst);
  RegId Y = getAlias(MoveInsts[MoveIdx].Src);
  RegId U = X, V = Y;
  if (U == V) {
    MoveStates[MoveIdx] = MoveState::Coalesced;
    addWorkList(U);
    return;
  }
  if (AdjSet.count(edgeKey(U, V)) != 0) {
    ++Stats.CoalesceConstrained;
    MoveStates[MoveIdx] = MoveState::Constrained;
    addWorkList(U);
    addWorkList(V);
    return;
  }
  if (briggsConservative(U, V)) {
    ++Stats.CoalesceBriggs;
    MoveStates[MoveIdx] = MoveState::Coalesced;
    combine(U, V);
    addWorkList(U);
    return;
  }
  // George test as a fallback: every neighbor of V is OK with U.
  bool GeorgeAll = true;
  for (RegId T : adjacent(V))
    GeorgeAll &= georgeOk(T, U);
  if (GeorgeAll) {
    ++Stats.CoalesceGeorge;
    MoveStates[MoveIdx] = MoveState::Coalesced;
    combine(U, V);
    addWorkList(U);
    return;
  }
  ++Stats.CoalesceDeferred;
  MoveStates[MoveIdx] = MoveState::Active;
  ActiveMoves.insert(MoveIdx);
}

void IrcRound::addWorkList(RegId U) {
  if (!moveRelated(U) && Degree[U] < K) {
    FreezeWorklist.erase(U);
    SimplifyWorklist.insert(U);
  }
}

void IrcRound::combine(RegId U, RegId V) {
  if (FreezeWorklist.count(V))
    FreezeWorklist.erase(V);
  else
    SpillWorklist.erase(V);
  CoalescedNodes.insert(V);
  Alias[V] = U;
  for (uint32_t MoveIdx : MoveList[V])
    MoveList[U].push_back(MoveIdx);
  enableMoves(V);
  for (RegId T : adjacent(V)) {
    addEdge(T, U);
    decrementDegree(T);
  }
  if (Degree[U] >= K && FreezeWorklist.count(U)) {
    FreezeWorklist.erase(U);
    SpillWorklist.insert(U);
  }
}

void IrcRound::freeze() {
  ++Stats.FreezeSteps;
  RegId U = *FreezeWorklist.begin();
  FreezeWorklist.erase(FreezeWorklist.begin());
  SimplifyWorklist.insert(U);
  freezeMoves(U);
}

void IrcRound::freezeMoves(RegId U) {
  for (uint32_t MoveIdx : nodeMoves(U)) {
    if (MoveStates[MoveIdx] == MoveState::Active)
      ActiveMoves.erase(MoveIdx);
    else
      WorklistMoves.erase(MoveIdx);
    MoveStates[MoveIdx] = MoveState::Frozen;
    RegId X = getAlias(MoveInsts[MoveIdx].Dst);
    RegId Y = getAlias(MoveInsts[MoveIdx].Src);
    RegId V = Y == getAlias(U) ? X : Y;
    if (nodeMoves(V).empty() && Degree[V] < K && FreezeWorklist.count(V)) {
      FreezeWorklist.erase(V);
      SimplifyWorklist.insert(V);
    }
  }
}

void IrcRound::selectSpill() {
  ++Stats.SpillSelects;
  // Chaitin heuristic: lowest cost / degree. Spill temporaries have
  // infinite cost so they are chosen only when nothing else remains.
  RegId BestNode = NoReg;
  double BestScore = std::numeric_limits<double>::infinity();
  for (RegId N : SpillWorklist) {
    double Score =
        SpillCost[N] / std::max(1.0, static_cast<double>(Degree[N]));
    if (BestNode == NoReg || Score < BestScore) {
      BestNode = N;
      BestScore = Score;
    }
  }
  assert(BestNode != NoReg && "selectSpill on empty worklist");
  SpillWorklist.erase(BestNode);
  SimplifyWorklist.insert(BestNode);
  freezeMoves(BestNode);
}

void IrcRound::assignColors() {
  // Members of each representative, for the select hook.
  std::unordered_map<RegId, std::vector<RegId>> MembersOf;
  for (RegId N = 0; N != NumNodes; ++N)
    MembersOf[getAlias(N)].push_back(N);

  SelectContext Ctx;
  Ctx.ColorOfVReg = [this](RegId V) {
    RegId Rep = getAlias(V);
    return ColorOf[Rep] == NoReg ? -1 : static_cast<int>(ColorOf[Rep]);
  };

  while (!SelectStack.empty()) {
    RegId N = SelectStack.back();
    SelectStack.pop_back();
    std::vector<uint8_t> Used(K, 0);
    for (RegId W : AdjList[N]) {
      RegId Rep = getAlias(W);
      if (ColoredNodes.count(Rep))
        Used[ColorOf[Rep]] = 1;
    }
    std::vector<unsigned> OkColors;
    for (unsigned C = 0; C != K; ++C)
      if (!Used[C])
        OkColors.push_back(C);
    OnSelectStack[N] = 0;
    if (OkColors.empty()) {
      SpilledNodes.insert(N);
      continue;
    }
    ColoredNodes.insert(N);
    unsigned Chosen = OkColors.front();
    if (Hook && OkColors.size() > 1) {
      Ctx.Node = N;
      Ctx.Members = &MembersOf[N];
      Ctx.OkColors = &OkColors;
      Chosen = Hook->choose(Ctx);
      assert(std::find(OkColors.begin(), OkColors.end(), Chosen) !=
                 OkColors.end() &&
             "hook returned an illegal color");
    }
    ColorOf[N] = Chosen;
  }
  for (RegId N : CoalescedNodes) {
    RegId Rep = getAlias(N);
    if (ColoredNodes.count(Rep))
      ColorOf[N] = ColorOf[Rep];
  }
}

std::vector<RegId> IrcRound::run(std::vector<RegId> &ColorOutParam) {
  build();
  computeSpillCosts();
  if (Hook)
    Hook->beginFunction(F);
  makeWorklists();
  for (;;) {
    if (!SimplifyWorklist.empty())
      simplify();
    else if (!WorklistMoves.empty())
      coalesce();
    else if (!FreezeWorklist.empty())
      freeze();
    else if (!SpillWorklist.empty())
      selectSpill();
    else
      break;
  }
  assignColors();
  ColorOutParam = ColorOf;
  // A spilled representative stands for every virtual register coalesced
  // into it; all of them must go to memory.
  std::vector<RegId> AllSpilled;
  for (RegId N = 0; N != NumNodes; ++N)
    if (SpilledNodes.count(getAlias(N)))
      AllSpilled.push_back(N);
  return AllSpilled;
}

} // namespace

std::vector<RegId> dra::insertSpillCode(Function &F, RegId VReg) {
  uint32_t Slot = F.NumSpillSlots++;
  std::vector<RegId> NewTemps;
  for (BasicBlock &BB : F.Blocks) {
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(BB.Insts.size());
    for (Instruction I : BB.Insts) {
      // Loads before uses.
      RegId Uses[2];
      unsigned NumUses;
      I.uses(Uses, NumUses);
      bool UsesVReg = false;
      for (unsigned U = 0; U != NumUses; ++U)
        UsesVReg |= Uses[U] == VReg;
      if (UsesVReg) {
        RegId Tmp = F.makeReg();
        NewTemps.push_back(Tmp);
        Instruction Ld;
        Ld.Op = Opcode::SpillLd;
        Ld.Dst = Tmp;
        Ld.Imm = Slot;
        NewInsts.push_back(Ld);
        if (NumUses >= 1 && I.Src1 == VReg)
          I.Src1 = Tmp;
        if (NumUses >= 2 && I.Src2 == VReg)
          I.Src2 = Tmp;
      }
      // Store after def.
      if (I.def() == VReg) {
        RegId Tmp = F.makeReg();
        NewTemps.push_back(Tmp);
        I.Dst = Tmp;
        NewInsts.push_back(I);
        Instruction St;
        St.Op = Opcode::SpillSt;
        St.Src1 = Tmp;
        St.Imm = Slot;
        NewInsts.push_back(St);
        continue;
      }
      NewInsts.push_back(I);
    }
    BB.Insts = std::move(NewInsts);
  }
  return NewTemps;
}

void dra::rewriteToPhysical(Function &F, const std::vector<RegId> &ColorOf,
                            unsigned K, size_t *MovesRemoved) {
  for (BasicBlock &BB : F.Blocks) {
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(BB.Insts.size());
    for (Instruction I : BB.Insts) {
      for (unsigned Field = 0; Field != I.numRegFields(); ++Field) {
        RegId V = I.regField(Field);
        assert(ColorOf[V] != NoReg && "uncolored register after allocation");
        assert(ColorOf[V] < K && "color out of range");
        I.setRegField(Field, ColorOf[V]);
      }
      if (I.Op == Opcode::Mov && I.Dst == I.Src1) {
        if (MovesRemoved)
          ++*MovesRemoved;
        continue;
      }
      NewInsts.push_back(I);
    }
    BB.Insts = std::move(NewInsts);
  }
  F.NumRegs = K;
  F.recomputeCFG();
}

AllocResult dra::allocateGraphColoring(Function &F, unsigned K,
                                       SelectHook *Hook,
                                       unsigned MaxIterations,
                                       std::vector<RegId> *ColorOut,
                                       std::vector<StageSpan> *SubSpans) {
  assert(K >= 4 && "need at least four physical registers");
  AllocResult Result;
  std::vector<uint8_t> IsSpillTemp(F.NumRegs, 0);

  std::vector<RegId> ColorOf;
  for (;;) {
    if (++Result.Iterations > MaxIterations) {
      Result.Success = false;
      return Result;
    }
    ScopedSpan Span(SubSpans, "alloc.round");
    IrcRound Round(F, K, Hook, IsSpillTemp, Result);
    std::vector<RegId> Spilled = Round.run(ColorOf);
    if (Spilled.empty())
      break;
    Result.SpilledRanges += Spilled.size();
    for (RegId V : Spilled) {
      std::vector<RegId> Temps = insertSpillCode(F, V);
      IsSpillTemp.resize(F.NumRegs, 0);
      for (RegId T : Temps)
        IsSpillTemp[T] = 1;
    }
  }

  for (const BasicBlock &BB : F.Blocks)
    for (const Instruction &I : BB.Insts) {
      Result.SpillLoads += I.Op == Opcode::SpillLd;
      Result.SpillStores += I.Op == Opcode::SpillSt;
    }

  if (ColorOut) {
    // Leave F in virtual-register form for post-coloring refinement.
    *ColorOut = std::move(ColorOf);
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        Result.MovesRemaining += I.Op == Opcode::Mov;
    return Result;
  }

  rewriteToPhysical(F, ColorOf, K, &Result.MovesRemoved);
  for (const BasicBlock &BB : F.Blocks)
    for (const Instruction &I : BB.Insts)
      Result.MovesRemaining += I.Op == Opcode::Mov;
  return Result;
}
