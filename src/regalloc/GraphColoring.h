//===- regalloc/GraphColoring.h - Iterated register coalescing --*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline register allocator of the paper's low-end evaluation:
/// iterated register coalescing (George & Appel, TOPLAS 18(3), 1996),
/// implemented as the classic worklist algorithm with Briggs/George
/// conservative coalescing, freeze, cost/degree spill selection, optimistic
/// (potential) spilling, spill-code insertion and re-iteration.
///
/// The select stage is parameterized by a SelectHook so the paper's
/// *differential select* (Section 6) plugs in without touching the
/// allocator core.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_REGALLOC_GRAPHCOLORING_H
#define DRA_REGALLOC_GRAPHCOLORING_H

#include "driver/Metrics.h"
#include "ir/Function.h"
#include "regalloc/SelectHook.h"

#include <vector>

namespace dra {

/// Summary of one allocation run.
struct AllocResult {
  /// False only if MaxIterations was exceeded (pathological).
  bool Success = true;
  /// Build/color/spill rounds executed.
  unsigned Iterations = 0;
  /// Live ranges sent to memory across all rounds.
  size_t SpilledRanges = 0;
  /// SpillLd / SpillSt instructions present in the final code.
  size_t SpillLoads = 0;
  size_t SpillStores = 0;
  /// Mov instructions deleted because source and destination received the
  /// same physical register (coalesced or luckily-assigned).
  size_t MovesRemoved = 0;
  /// Mov instructions remaining in the final code.
  size_t MovesRemaining = 0;

  // Worklist-event counts, summed over all rounds. Maintained as plain
  // integer increments inside the worklist loop (no registry access), so
  // they are always on; runPipeline flushes them to a MetricsRegistry
  // when one is configured.
  /// Nodes removed by the simplify step.
  size_t SimplifySteps = 0;
  /// Moves conservatively coalesced by the Briggs test.
  size_t CoalesceBriggs = 0;
  /// Moves coalesced by the George fallback test after Briggs declined.
  size_t CoalesceGeorge = 0;
  /// Moves discarded because their endpoints interfere.
  size_t CoalesceConstrained = 0;
  /// Moves deferred to the active list (both tests declined).
  size_t CoalesceDeferred = 0;
  /// Freeze steps (a move-related node gave up its moves).
  size_t FreezeSteps = 0;
  /// Potential-spill selections (Chaitin cost/degree heuristic).
  size_t SpillSelects = 0;
};

/// Allocates \p F onto \p K physical registers, mutating it in place:
/// spill code is inserted, every register operand is rewritten to a
/// physical register in [0, K), same-register moves are deleted and
/// F.NumRegs becomes K. \p Hook (optional) steers color choice; it must
/// outlive the call. Requires K >= 4 so any instruction's operands plus a
/// spill temp can be held simultaneously.
///
/// When \p ColorOut is non-null, the final rewrite is skipped: F is left
/// in virtual-register form (with spill code inserted) and *ColorOut holds
/// the complete vreg -> color map, so post-coloring passes (differential
/// recoloring) can refine the assignment before rewriteToPhysical().
///
/// When \p SubSpans is non-null, one Depth-1 "alloc.round" span is
/// recorded per build/color/spill round (null = no clock reads).
AllocResult allocateGraphColoring(Function &F, unsigned K,
                                  SelectHook *Hook = nullptr,
                                  unsigned MaxIterations = 60,
                                  std::vector<RegId> *ColorOut = nullptr,
                                  std::vector<StageSpan> *SubSpans = nullptr);

/// Test-only: when enabled, every worklist step of the IRC core validates
/// its structural invariants — each node sits in exactly one of
/// {simplify, freeze, spill, select stack, coalesced}; worklist members'
/// cached degree equals their live adjacency count; spill-worklist members
/// have significant (>= K) degree. Violations are counted, not fatal.
void setIrcSelfCheck(bool Enable);

/// Total invariant violations observed since process start (0 when the
/// self-check has never been enabled or the invariants held).
size_t ircSelfCheckViolations();

/// Rewrites every register operand of \p F through \p ColorOf (a complete
/// vreg -> color map), deletes moves that became identities (counted in
/// \p MovesRemoved when non-null) and sets F.NumRegs = K.
void rewriteToPhysical(Function &F, const std::vector<RegId> &ColorOf,
                       unsigned K, size_t *MovesRemoved = nullptr);

/// Inserts spill code for \p VReg into \p F (store after each def, load
/// before each use through fresh temporaries) and returns the fresh
/// temporaries created. Exposed for reuse by the optimal-spill allocator
/// and for direct unit testing.
std::vector<RegId> insertSpillCode(Function &F, RegId VReg);

} // namespace dra

#endif // DRA_REGALLOC_GRAPHCOLORING_H
