//===- regalloc/InterferenceGraph.h - Interference graphs -------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An undirected interference graph over the (virtual) registers of one
/// function, built from liveness in the classic Chaitin fashion: at every
/// definition the defined register interferes with everything live after
/// the instruction, except that a move `d = s` does not make d interfere
/// with s. Register-to-register moves are recorded separately for the
/// coalescing stages.
///
/// Storage is a packed bit matrix — (N+63)/64 64-bit words per row — for
/// constant-time membership, plus a CSR neighbor array (per-row ascending)
/// materialized lazily from the bit rows for iteration. Graph storage can
/// be carved from an Arena when the caller has one in scope.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_REGALLOC_INTERFERENCEGRAPH_H
#define DRA_REGALLOC_INTERFERENCEGRAPH_H

#include "adt/BitMatrix.h"
#include "ir/Function.h"

#include <vector>

namespace dra {

class Arena;
class Liveness;

/// A register-to-register move occurrence.
struct MovePair {
  RegId Dst;
  RegId Src;
  uint32_t Block;
  uint32_t InstIdx;
};

/// Undirected interference graph with packed-bitset edge membership and
/// CSR neighbor iteration.
class InterferenceGraph {
public:
  /// A contiguous, ascending run of neighbor ids (view into the CSR
  /// array; invalidated by addEdge).
  class NeighborRange {
  public:
    NeighborRange(const RegId *B, const RegId *E) : B(B), E(E) {}
    const RegId *begin() const { return B; }
    const RegId *end() const { return E; }
    size_t size() const { return static_cast<size_t>(E - B); }
    bool empty() const { return B == E; }
    RegId operator[](size_t I) const { return B[I]; }

  private:
    const RegId *B, *E;
  };

  /// Builds the graph for \p F using \p LV (computed for the current F).
  /// With \p Scratch, the bit-matrix slab is carved from the arena (which
  /// must then outlive the graph) instead of the heap.
  static InterferenceGraph build(const Function &F, const Liveness &LV,
                                 Arena *Scratch = nullptr);

  explicit InterferenceGraph(uint32_t NumNodes = 0) { reset(NumNodes); }

  void reset(uint32_t NumNodes);

  uint32_t numNodes() const { return N; }

  /// Adds the undirected edge (A, B); self-edges are ignored.
  void addEdge(RegId A, RegId B);

  bool interferes(RegId A, RegId B) const {
    if (A == B)
      return false;
    return Bits.test(A, B);
  }

  /// Neighbors of \p N in ascending id order. (The old adjacency-list
  /// implementation returned discovery order; every consumer is
  /// order-insensitive — membership marking, sorted copies.)
  NeighborRange neighbors(RegId Node) const {
    if (!Finalized)
      finalize();
    return {Nbrs.data() + Off[Node], Nbrs.data() + Off[Node + 1]};
  }

  unsigned degree(RegId Node) const { return Deg[Node]; }

  const std::vector<MovePair> &moves() const { return Moves; }

  /// True if the coloring \p ColorOf (one entry per node) assigns distinct
  /// colors to every interfering pair.
  bool isValidColoring(const std::vector<RegId> &ColorOf) const;

private:
  uint32_t N = 0;
  BitMatrix Bits;
  std::vector<unsigned> Deg;
  /// CSR neighbor storage, rebuilt from the bit rows on demand.
  mutable std::vector<uint32_t> Off;
  mutable std::vector<RegId> Nbrs;
  mutable bool Finalized = false;
  std::vector<MovePair> Moves;

  void finalize() const;
};

} // namespace dra

#endif // DRA_REGALLOC_INTERFERENCEGRAPH_H
