//===- regalloc/InterferenceGraph.h - Interference graphs -------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An undirected interference graph over the (virtual) registers of one
/// function, built from liveness in the classic Chaitin fashion: at every
/// definition the defined register interferes with everything live after
/// the instruction, except that a move `d = s` does not make d interfere
/// with s. Register-to-register moves are recorded separately for the
/// coalescing stages.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_REGALLOC_INTERFERENCEGRAPH_H
#define DRA_REGALLOC_INTERFERENCEGRAPH_H

#include "ir/Function.h"

#include <unordered_set>
#include <vector>

namespace dra {

class Liveness;

/// A register-to-register move occurrence.
struct MovePair {
  RegId Dst;
  RegId Src;
  uint32_t Block;
  uint32_t InstIdx;
};

/// Undirected interference graph with adjacency lists and constant-time
/// edge queries.
class InterferenceGraph {
public:
  /// Builds the graph for \p F using \p LV (computed for the current F).
  static InterferenceGraph build(const Function &F, const Liveness &LV);

  explicit InterferenceGraph(uint32_t NumNodes = 0) { reset(NumNodes); }

  void reset(uint32_t NumNodes);

  uint32_t numNodes() const { return static_cast<uint32_t>(Adj.size()); }

  /// Adds the undirected edge (A, B); self-edges are ignored.
  void addEdge(RegId A, RegId B);

  bool interferes(RegId A, RegId B) const;

  const std::vector<RegId> &neighbors(RegId N) const { return Adj[N]; }

  unsigned degree(RegId N) const {
    return static_cast<unsigned>(Adj[N].size());
  }

  const std::vector<MovePair> &moves() const { return Moves; }

  /// True if the coloring \p ColorOf (one entry per node) assigns distinct
  /// colors to every interfering pair.
  bool isValidColoring(const std::vector<RegId> &ColorOf) const;

private:
  std::vector<std::vector<RegId>> Adj;
  std::unordered_set<uint64_t> EdgeSet;
  std::vector<MovePair> Moves;

  static uint64_t edgeKey(RegId A, RegId B) {
    if (A > B)
      std::swap(A, B);
    return (static_cast<uint64_t>(A) << 32) | B;
  }
};

} // namespace dra

#endif // DRA_REGALLOC_INTERFERENCEGRAPH_H
