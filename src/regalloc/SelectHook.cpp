//===- regalloc/SelectHook.cpp - Color-selection extension point ----------===//

#include "regalloc/SelectHook.h"

using namespace dra;

// Out-of-line virtual-method anchor.
SelectHook::~SelectHook() = default;
