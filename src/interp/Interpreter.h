//===- interp/Interpreter.h - Executable IR semantics -----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interpreter for the reproduction IR. It serves two purposes:
///
///  1. Equivalence oracle — a program must produce the same result
///     (return value + memory checksum) before allocation, after every
///     allocation scheme, and after differential encode/decode.
///  2. Trace producer — the pipeline simulators consume the dynamic
///     instruction stream through a callback, so no trace is materialized.
///
/// All arithmetic is 64-bit two's complement; division/remainder by zero
/// yield 0; Load/Store wrap addresses modulo the data-array size. These
/// total semantics make every syntactically valid program executable, which
/// the randomized property tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_INTERP_INTERPRETER_H
#define DRA_INTERP_INTERPRETER_H

#include "ir/Function.h"

#include <cstdint>
#include <functional>

namespace dra {

/// Outcome of one execution.
struct ExecResult {
  /// Value of the executed Ret.
  int64_t ReturnValue = 0;
  /// FNV-1a hash over the final data array (spill slots excluded — they
  /// are an allocation artifact, not program state).
  uint64_t MemChecksum = 0;
  /// Number of executed (non-SetLastReg) instructions.
  uint64_t DynInsts = 0;
  /// True if the step limit was hit before Ret.
  bool HitStepLimit = false;
};

/// One dynamic trace event, delivered per executed instruction in order.
struct TraceEvent {
  uint32_t Block;
  uint32_t InstIdx;
  const Instruction *Inst;
  /// Effective data-array word address for Load/Store (after wrapping);
  /// spill slot index for SpillLd/SpillSt; 0 otherwise.
  uint64_t MemAddr;
  /// True when the following fetch is non-sequential (taken branch).
  bool BranchTaken;
};

using TraceCallback = std::function<void(const TraceEvent &)>;

/// Executes \p F from block 0 for at most \p StepLimit instructions.
/// SetLastReg pseudo instructions are reported to \p OnEvent (they occupy
/// fetch/decode slots on real hardware) but are not counted in DynInsts and
/// have no architectural effect.
ExecResult interpret(const Function &F, uint64_t StepLimit = 50'000'000,
                     const TraceCallback &OnEvent = nullptr);

/// Convenience: a single fingerprint combining return value and memory
/// checksum, used by the equivalence tests.
uint64_t fingerprint(const ExecResult &R);

} // namespace dra

#endif // DRA_INTERP_INTERPRETER_H
