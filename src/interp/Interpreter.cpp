//===- interp/Interpreter.cpp - Executable IR semantics -------------------===//

#include "interp/Interpreter.h"

#include <vector>

using namespace dra;

ExecResult dra::interpret(const Function &F, uint64_t StepLimit,
                          const TraceCallback &OnEvent) {
  ExecResult Result;
  std::vector<int64_t> Regs(F.NumRegs, 0);
  std::vector<int64_t> Mem(std::max<uint32_t>(F.MemWords, 1), 0);
  std::vector<int64_t> Spill(std::max<uint32_t>(F.NumSpillSlots, 1), 0);

  auto WrapAddr = [&](int64_t Raw) {
    uint64_t Size = Mem.size();
    int64_t Wrapped = Raw % static_cast<int64_t>(Size);
    if (Wrapped < 0)
      Wrapped += static_cast<int64_t>(Size);
    return static_cast<uint64_t>(Wrapped);
  };

  uint32_t Block = 0;
  uint32_t InstIdx = 0;
  bool Done = false;
  while (!Done) {
    if (Result.DynInsts >= StepLimit) {
      Result.HitStepLimit = true;
      break;
    }
    assert(Block < F.Blocks.size() && "fell off the CFG");
    const BasicBlock &BB = F.Blocks[Block];
    assert(InstIdx < BB.Insts.size() && "fell off a block");
    const Instruction &I = BB.Insts[InstIdx];

    TraceEvent Ev;
    Ev.Block = Block;
    Ev.InstIdx = InstIdx;
    Ev.Inst = &I;
    Ev.MemAddr = 0;
    Ev.BranchTaken = false;

    uint32_t NextBlock = Block;
    uint32_t NextInst = InstIdx + 1;

    auto Shift = [](int64_t Amount) { return Amount & 63; };

    switch (I.Op) {
    case Opcode::Add:
      Regs[I.Dst] = Regs[I.Src1] + Regs[I.Src2];
      break;
    case Opcode::Sub:
      Regs[I.Dst] = Regs[I.Src1] - Regs[I.Src2];
      break;
    case Opcode::Mul:
      Regs[I.Dst] = Regs[I.Src1] * Regs[I.Src2];
      break;
    case Opcode::DivS:
      Regs[I.Dst] = Regs[I.Src2] == 0 || (Regs[I.Src1] == INT64_MIN &&
                                          Regs[I.Src2] == -1)
                        ? 0
                        : Regs[I.Src1] / Regs[I.Src2];
      break;
    case Opcode::Rem:
      Regs[I.Dst] = Regs[I.Src2] == 0 || (Regs[I.Src1] == INT64_MIN &&
                                          Regs[I.Src2] == -1)
                        ? 0
                        : Regs[I.Src1] % Regs[I.Src2];
      break;
    case Opcode::And:
      Regs[I.Dst] = Regs[I.Src1] & Regs[I.Src2];
      break;
    case Opcode::Or:
      Regs[I.Dst] = Regs[I.Src1] | Regs[I.Src2];
      break;
    case Opcode::Xor:
      Regs[I.Dst] = Regs[I.Src1] ^ Regs[I.Src2];
      break;
    case Opcode::Shl:
      Regs[I.Dst] = static_cast<int64_t>(
          static_cast<uint64_t>(Regs[I.Src1]) << Shift(Regs[I.Src2]));
      break;
    case Opcode::Shr:
      Regs[I.Dst] = static_cast<int64_t>(static_cast<uint64_t>(Regs[I.Src1]) >>
                                         Shift(Regs[I.Src2]));
      break;
    case Opcode::AddI:
      Regs[I.Dst] = Regs[I.Src1] + I.Imm;
      break;
    case Opcode::MulI:
      Regs[I.Dst] = Regs[I.Src1] * I.Imm;
      break;
    case Opcode::AndI:
      Regs[I.Dst] = Regs[I.Src1] & I.Imm;
      break;
    case Opcode::XorI:
      Regs[I.Dst] = Regs[I.Src1] ^ I.Imm;
      break;
    case Opcode::ShlI:
      Regs[I.Dst] = static_cast<int64_t>(static_cast<uint64_t>(Regs[I.Src1])
                                         << Shift(I.Imm));
      break;
    case Opcode::ShrI:
      Regs[I.Dst] = static_cast<int64_t>(static_cast<uint64_t>(Regs[I.Src1]) >>
                                         Shift(I.Imm));
      break;
    case Opcode::CmpEQ:
      Regs[I.Dst] = Regs[I.Src1] == Regs[I.Src2];
      break;
    case Opcode::CmpNE:
      Regs[I.Dst] = Regs[I.Src1] != Regs[I.Src2];
      break;
    case Opcode::CmpLT:
      Regs[I.Dst] = Regs[I.Src1] < Regs[I.Src2];
      break;
    case Opcode::CmpLE:
      Regs[I.Dst] = Regs[I.Src1] <= Regs[I.Src2];
      break;
    case Opcode::Mov:
      Regs[I.Dst] = Regs[I.Src1];
      break;
    case Opcode::MovI:
      Regs[I.Dst] = I.Imm;
      break;
    case Opcode::Load: {
      uint64_t Addr = WrapAddr(Regs[I.Src1] + I.Imm);
      Ev.MemAddr = Addr;
      Regs[I.Dst] = Mem[Addr];
      break;
    }
    case Opcode::Store: {
      uint64_t Addr = WrapAddr(Regs[I.Src1] + I.Imm);
      Ev.MemAddr = Addr;
      Mem[Addr] = Regs[I.Src2];
      break;
    }
    case Opcode::SpillLd:
      assert(static_cast<uint64_t>(I.Imm) < Spill.size() &&
             "spill slot out of range");
      Ev.MemAddr = static_cast<uint64_t>(I.Imm);
      Regs[I.Dst] = Spill[I.Imm];
      break;
    case Opcode::SpillSt:
      assert(static_cast<uint64_t>(I.Imm) < Spill.size() &&
             "spill slot out of range");
      Ev.MemAddr = static_cast<uint64_t>(I.Imm);
      Spill[I.Imm] = Regs[I.Src1];
      break;
    case Opcode::Br: {
      uint32_t Taken = Regs[I.Src1] != 0 ? I.Target0 : I.Target1;
      NextBlock = Taken;
      NextInst = 0;
      // Falling through to the next block in layout order costs nothing; a
      // redirected fetch is a taken branch.
      Ev.BranchTaken = Taken != Block + 1;
      break;
    }
    case Opcode::Jmp:
      NextBlock = I.Target0;
      NextInst = 0;
      Ev.BranchTaken = I.Target0 != Block + 1;
      break;
    case Opcode::Ret:
      Result.ReturnValue = Regs[I.Src1];
      Done = true;
      break;
    case Opcode::SetLastReg:
      // Decode-stage only: no architectural effect, not counted as an
      // executed instruction, but reported so simulators can price its
      // fetch/decode slot.
      if (OnEvent)
        OnEvent(Ev);
      Block = NextBlock;
      InstIdx = NextInst;
      continue;
    }

    ++Result.DynInsts;
    if (OnEvent)
      OnEvent(Ev);
    Block = NextBlock;
    InstIdx = NextInst;
  }

  // FNV-1a over the data array.
  uint64_t Hash = 1469598103934665603ull;
  for (int64_t Word : Mem) {
    uint64_t Bits = static_cast<uint64_t>(Word);
    for (int Byte = 0; Byte != 8; ++Byte) {
      Hash ^= (Bits >> (Byte * 8)) & 0xff;
      Hash *= 1099511628211ull;
    }
  }
  Result.MemChecksum = Hash;
  return Result;
}

uint64_t dra::fingerprint(const ExecResult &R) {
  uint64_t H = R.MemChecksum;
  H ^= static_cast<uint64_t>(R.ReturnValue) + 0x9e3779b97f4a7c15ull +
       (H << 6) + (H >> 2);
  return H;
}
