//===- analysis/LoopInfo.cpp - Dominators and natural loops ---------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cmath>

using namespace dra;

namespace {

/// Reverse-postorder numbering of the reachable blocks.
struct Rpo {
  std::vector<uint32_t> Order;          // RPO sequence of block indices.
  std::vector<uint32_t> Number;         // Block -> RPO position (or ~0u).

  explicit Rpo(const Function &F) {
    Number.assign(F.Blocks.size(), ~0u);
    std::vector<uint8_t> State(F.Blocks.size(), 0); // 0=new 1=open 2=done
    // Iterative post-order DFS.
    std::vector<std::pair<uint32_t, size_t>> Stack;
    std::vector<uint32_t> Post;
    Stack.push_back({0, 0});
    State[0] = 1;
    while (!Stack.empty()) {
      auto &[Block, NextSucc] = Stack.back();
      const auto &Succs = F.Blocks[Block].Succs;
      if (NextSucc < Succs.size()) {
        uint32_t Succ = Succs[NextSucc++];
        if (State[Succ] == 0) {
          State[Succ] = 1;
          Stack.push_back({Succ, 0});
        }
        continue;
      }
      State[Block] = 2;
      Post.push_back(Block);
      Stack.pop_back();
    }
    Order.assign(Post.rbegin(), Post.rend());
    for (uint32_t I = 0, E = static_cast<uint32_t>(Order.size()); I != E; ++I)
      Number[Order[I]] = I;
  }
};

} // namespace

LoopInfo LoopInfo::compute(const Function &F) {
  LoopInfo LI;
  size_t NumBlocks = F.Blocks.size();
  LI.IDoms.assign(NumBlocks, NoBlock);
  LI.Depths.assign(NumBlocks, 0);

  Rpo Order(F);

  // Cooper-Harvey-Kennedy iterative dominators over the reachable blocks.
  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (Order.Number[A] > Order.Number[B])
        A = LI.IDoms[A];
      while (Order.Number[B] > Order.Number[A])
        B = LI.IDoms[B];
    }
    return A;
  };
  LI.IDoms[0] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Block : Order.Order) {
      if (Block == 0)
        continue;
      uint32_t NewIdom = NoBlock;
      for (uint32_t Pred : F.Blocks[Block].Preds) {
        if (Order.Number[Pred] == ~0u || LI.IDoms[Pred] == NoBlock)
          continue; // Unreachable or not yet processed.
        NewIdom = NewIdom == NoBlock ? Pred : Intersect(NewIdom, Pred);
      }
      if (NewIdom != NoBlock && LI.IDoms[Block] != NewIdom) {
        LI.IDoms[Block] = NewIdom;
        Changed = true;
      }
    }
  }

  // Natural loops: group back edges Tail -> Header (Header dominates Tail)
  // by header so a loop with several latches counts once, then collect the
  // union body by walking predecessors from every tail until the header;
  // every body block's depth increases by one per distinct header.
  std::vector<std::vector<uint32_t>> TailsOf(NumBlocks);
  for (uint32_t Tail = 0; Tail != NumBlocks; ++Tail) {
    if (Order.Number[Tail] == ~0u)
      continue;
    for (uint32_t Header : F.Blocks[Tail].Succs)
      if (LI.dominates(Header, Tail))
        TailsOf[Header].push_back(Tail);
  }
  for (uint32_t Header = 0; Header != NumBlocks; ++Header) {
    if (TailsOf[Header].empty())
      continue;
    LI.Headers.push_back(Header);
    std::vector<uint32_t> Work;
    std::vector<uint8_t> InBody(NumBlocks, 0);
    InBody[Header] = 1;
    for (uint32_t Tail : TailsOf[Header]) {
      if (!InBody[Tail]) {
        InBody[Tail] = 1;
        Work.push_back(Tail);
      }
    }
    while (!Work.empty()) {
      uint32_t Block = Work.back();
      Work.pop_back();
      for (uint32_t Pred : F.Blocks[Block].Preds) {
        if (Order.Number[Pred] == ~0u || InBody[Pred])
          continue;
        InBody[Pred] = 1;
        Work.push_back(Pred);
      }
    }
    for (uint32_t Block = 0; Block != NumBlocks; ++Block)
      if (InBody[Block])
        ++LI.Depths[Block];
  }
  return LI;
}

bool LoopInfo::dominates(uint32_t A, uint32_t B) const {
  if (IDoms[B] == NoBlock || IDoms[A] == NoBlock)
    return false;
  while (B != A && B != 0)
    B = IDoms[B];
  return B == A;
}

double LoopInfo::frequency(uint32_t Block) const {
  // 10^depth, capped to avoid overflowing spill-cost accumulation.
  unsigned D = std::min(Depths[Block], 6u);
  return std::pow(10.0, static_cast<double>(D));
}
