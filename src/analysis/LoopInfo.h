//===- analysis/LoopInfo.h - Dominators and natural loops -------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator computation and natural-loop detection. The only
/// consumer-facing product is the loop-nesting depth of each block, which
/// feeds the static execution-frequency estimate (the paper relies on
/// "static weight estimation instead of profile information", Section 10.1).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ANALYSIS_LOOPINFO_H
#define DRA_ANALYSIS_LOOPINFO_H

#include "ir/Function.h"

#include <vector>

namespace dra {

/// Loop-nesting information for the blocks of one function.
class LoopInfo {
public:
  /// Computes dominators and natural loops of \p F (CFG must be current).
  /// Unreachable blocks get depth 0.
  static LoopInfo compute(const Function &F);

  /// Nesting depth of \p Block (0 = not in any loop).
  unsigned depth(uint32_t Block) const { return Depths[Block]; }

  /// Immediate dominator of \p Block (entry's idom is itself; unreachable
  /// blocks report NoBlock).
  uint32_t idom(uint32_t Block) const { return IDoms[Block]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

  /// Static execution-frequency estimate for \p Block: 10^depth, capped.
  /// Shared by spill costs and adjacency-graph edge weights.
  double frequency(uint32_t Block) const;

  /// Block indices that are loop headers.
  const std::vector<uint32_t> &headers() const { return Headers; }

private:
  std::vector<uint32_t> IDoms;
  std::vector<unsigned> Depths;
  std::vector<uint32_t> Headers;
};

} // namespace dra

#endif // DRA_ANALYSIS_LOOPINFO_H
