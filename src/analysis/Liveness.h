//===- analysis/Liveness.h - Live-variable analysis -------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward live-variable dataflow over the non-SSA IR. Live ranges
/// in this code base are whole (virtual) registers, matching the
/// Chaitin-style allocators of the paper; the optimal-spill pipeline splits
/// ranges explicitly by inserting moves before re-running this analysis.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ANALYSIS_LIVENESS_H
#define DRA_ANALYSIS_LIVENESS_H

#include "adt/BitVector.h"
#include "ir/Function.h"

#include <vector>

namespace dra {

class Arena;

/// Per-block live-in/live-out sets, plus per-block def/use summaries.
class Liveness {
public:
  /// Runs the fixpoint. \p F must have an up-to-date CFG
  /// (Function::recomputeCFG()). When \p Scratch is non-null, the
  /// transient gen/kill/temp word arrays of the fixpoint are carved from
  /// it instead of the heap (the LiveIn/LiveOut results still own their
  /// storage, so they may outlive the arena).
  static Liveness compute(const Function &F, Arena *Scratch = nullptr);

  const BitVector &liveIn(uint32_t Block) const { return LiveIn[Block]; }
  const BitVector &liveOut(uint32_t Block) const { return LiveOut[Block]; }

  /// Walks the instructions of \p Block backwards, invoking
  /// \p Fn(InstIdx, LiveAfter) with the set of registers live immediately
  /// *after* each instruction. The BitVector passed to \p Fn is reused
  /// between calls; copy it if it must outlive the callback.
  template <typename FnT>
  void forEachInstBackward(const Function &F, uint32_t Block, FnT Fn) const {
    BitVector Live = LiveOut[Block];
    const BasicBlock &BB = F.Blocks[Block];
    for (size_t Idx = BB.Insts.size(); Idx > 0; --Idx) {
      const Instruction &I = BB.Insts[Idx - 1];
      Fn(Idx - 1, static_cast<const BitVector &>(Live));
      RegId Def = I.def();
      if (Def != NoReg)
        Live.reset(Def);
      RegId Uses[2];
      unsigned NumUses;
      I.uses(Uses, NumUses);
      for (unsigned U = 0; U != NumUses; ++U)
        Live.set(Uses[U]);
    }
  }

  /// Maximum number of simultaneously live registers at any program point
  /// (taken immediately after each instruction and at block entries).
  unsigned maxPressure(const Function &F) const;

private:
  std::vector<BitVector> LiveIn;
  std::vector<BitVector> LiveOut;
};

} // namespace dra

#endif // DRA_ANALYSIS_LIVENESS_H
