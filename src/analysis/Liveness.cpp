//===- analysis/Liveness.cpp - Live-variable analysis ---------------------===//

#include "analysis/Liveness.h"

#include "adt/Arena.h"

using namespace dra;

Liveness Liveness::compute(const Function &F, Arena *Scratch) {
  size_t NumBlocks = F.Blocks.size();
  size_t NumRegs = F.NumRegs;
  size_t WPB = (NumRegs + 63) / 64; // words per register set

  // Transient per-block gen (upward-exposed uses) and kill (defs) sets,
  // plus one temp row, as flat word arrays: one allocation (or one arena
  // carve) instead of 2*NumBlocks+1 BitVectors.
  size_t ScratchWords = (2 * NumBlocks + 1) * WPB;
  std::vector<uint64_t> Own;
  uint64_t *Flat;
  if (Scratch) {
    Flat = Scratch->allocZeroedArray<uint64_t>(ScratchWords);
  } else {
    Own.assign(ScratchWords, 0);
    Flat = Own.data();
  }
  auto GenRow = [&](size_t B) { return Flat + B * WPB; };
  auto KillRow = [&](size_t B) { return Flat + (NumBlocks + B) * WPB; };
  uint64_t *Tmp = Flat + 2 * NumBlocks * WPB;
  auto TestBit = [](const uint64_t *Row, size_t I) {
    return (Row[I / 64] >> (I % 64)) & 1;
  };
  auto SetBit = [](uint64_t *Row, size_t I) {
    Row[I / 64] |= uint64_t(1) << (I % 64);
  };

  for (size_t B = 0; B != NumBlocks; ++B) {
    uint64_t *Gen = GenRow(B), *Kill = KillRow(B);
    for (const Instruction &I : F.Blocks[B].Insts) {
      RegId Uses[2];
      unsigned NumUses;
      I.uses(Uses, NumUses);
      for (unsigned U = 0; U != NumUses; ++U)
        if (!TestBit(Kill, Uses[U]))
          SetBit(Gen, Uses[U]);
      RegId Def = I.def();
      if (Def != NoReg)
        SetBit(Kill, Def);
    }
  }

  Liveness Result;
  Result.LiveIn.assign(NumBlocks, BitVector(NumRegs));
  Result.LiveOut.assign(NumBlocks, BitVector(NumRegs));

  // Round-robin fixpoint in reverse layout order (good enough for the
  // mostly-reducible CFGs the generators emit), word-parallel:
  //   LiveOut = union of successors' LiveIn
  //   LiveIn  = Gen | (LiveOut - Kill)
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = NumBlocks; B > 0; --B) {
      size_t Block = B - 1;
      uint64_t *Out = Result.LiveOut[Block].words();
      for (uint32_t Succ : F.Blocks[Block].Succs) {
        const uint64_t *SuccIn = Result.LiveIn[Succ].words();
        for (size_t W = 0; W != WPB; ++W) {
          uint64_t New = Out[W] | SuccIn[W];
          Changed |= New != Out[W];
          Out[W] = New;
        }
      }
      uint64_t *In = Result.LiveIn[Block].words();
      const uint64_t *Gen = GenRow(Block), *Kill = KillRow(Block);
      bool InChanged = false;
      for (size_t W = 0; W != WPB; ++W) {
        Tmp[W] = Gen[W] | (Out[W] & ~Kill[W]);
        InChanged |= Tmp[W] != In[W];
      }
      if (InChanged) {
        for (size_t W = 0; W != WPB; ++W)
          In[W] = Tmp[W];
        Changed = true;
      }
    }
  }
  return Result;
}

unsigned Liveness::maxPressure(const Function &F) const {
  unsigned Max = 0;
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    Max = std::max(Max, static_cast<unsigned>(LiveIn[B].count()));
    forEachInstBackward(F, B, [&](size_t, const BitVector &Live) {
      Max = std::max(Max, static_cast<unsigned>(Live.count()));
    });
  }
  return Max;
}
