//===- analysis/Liveness.cpp - Live-variable analysis ---------------------===//

#include "analysis/Liveness.h"

using namespace dra;

Liveness Liveness::compute(const Function &F) {
  size_t NumBlocks = F.Blocks.size();
  size_t NumRegs = F.NumRegs;

  // Per-block gen (upward-exposed uses) and kill (defs).
  std::vector<BitVector> Gen(NumBlocks), Kill(NumBlocks);
  for (size_t B = 0; B != NumBlocks; ++B) {
    Gen[B].resize(NumRegs);
    Kill[B].resize(NumRegs);
    for (const Instruction &I : F.Blocks[B].Insts) {
      RegId Uses[2];
      unsigned NumUses;
      I.uses(Uses, NumUses);
      for (unsigned U = 0; U != NumUses; ++U)
        if (!Kill[B].test(Uses[U]))
          Gen[B].set(Uses[U]);
      RegId Def = I.def();
      if (Def != NoReg)
        Kill[B].set(Def);
    }
  }

  Liveness Result;
  Result.LiveIn.assign(NumBlocks, BitVector(NumRegs));
  Result.LiveOut.assign(NumBlocks, BitVector(NumRegs));

  // Round-robin fixpoint in reverse layout order (good enough for the
  // mostly-reducible CFGs the generators emit).
  bool Changed = true;
  BitVector Tmp;
  while (Changed) {
    Changed = false;
    for (size_t B = NumBlocks; B > 0; --B) {
      size_t Block = B - 1;
      // LiveOut = union of successors' LiveIn.
      for (uint32_t Succ : F.Blocks[Block].Succs)
        Changed |= Result.LiveOut[Block].unionWith(Result.LiveIn[Succ]);
      // LiveIn = Gen | (LiveOut - Kill).
      Tmp = Result.LiveOut[Block];
      Tmp.subtract(Kill[Block]);
      Tmp.unionWith(Gen[Block]);
      if (!(Tmp == Result.LiveIn[Block])) {
        Result.LiveIn[Block] = Tmp;
        Changed = true;
      }
    }
  }
  return Result;
}

unsigned Liveness::maxPressure(const Function &F) const {
  unsigned Max = 0;
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    Max = std::max(Max, static_cast<unsigned>(LiveIn[B].count()));
    forEachInstBackward(F, B, [&](size_t, const BitVector &Live) {
      Max = std::max(Max, static_cast<unsigned>(Live.count()));
    });
  }
  return Max;
}
