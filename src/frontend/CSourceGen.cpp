//===- frontend/CSourceGen.cpp - Random mini-C program generation ---------===//

#include "frontend/CSourceGen.h"

#include "adt/Rng.h"

#include <sstream>
#include <vector>

using namespace dra;

namespace {

/// Emits one translation unit. Scalars are named v<n>, arrays a<n>,
/// loop induction variables i<n>; induction variables are readable but
/// never in the assignment pool, which is what guarantees termination.
class SourceGen {
public:
  SourceGen(const CSourceProfile &P) : P(P), R(P.Seed) {}

  std::string run() {
    // Helper H may call helpers 0..H-1, so emit them in order.
    for (uint32_t H = 0; H != P.NumHelpers; ++H)
      emitHelper(H);
    emitMain();
    return Out.str();
  }

private:
  const CSourceProfile &P;
  Rng R;
  std::ostringstream Out;
  int Indent = 0;

  // Per-function state, reset by emitHelper/emitMain.
  std::vector<std::string> Scalars;   ///< Assignable scalar variables.
  std::vector<std::string> Readables; ///< Scalars + live induction vars.
  std::vector<std::string> Arrays;
  uint32_t CalleeLimit = 0; ///< Helpers with index < CalleeLimit exist.
  uint32_t NextScalar = 0, NextLoopVar = 0;

  // The frontend lowers calls by inline expansion, so the expanded size
  // of a body is its own node count plus the *transitive* expanded size
  // of every callee at every call site — nested helper chains multiply
  // (h2 calling h1 three times splices h1's calls to h0 three times
  // over). Unchecked, that reaches the lowering's block cap and makes
  // register allocation quadratically slow long before it. HelperCost[H]
  // is the expanded-cost estimate of one call to hH, accumulated while
  // it was generated; CurCost tracks the body in progress, and call
  // sites that would push it past MaxBodyCost degrade to a plain
  // operand instead.
  static constexpr uint64_t MaxBodyCost = 6000;
  std::vector<uint64_t> HelperCost;
  uint64_t CurCost = 0;

  void line(const std::string &S) {
    for (int I = 0; I != Indent; ++I)
      Out << "  ";
    Out << S << "\n";
  }

  std::string lit() { return std::to_string(R.nextInRange(-32, 99)); }

  std::string readable() {
    if (Readables.empty() || R.withChance(1, 3))
      return lit();
    return R.pick(Readables);
  }

  std::string expr(uint32_t Depth) {
    ++CurCost;
    if (Depth == 0)
      return readable();
    switch (R.nextBelow(6)) {
    case 0:
      return readable();
    case 1: { // unary
      static const char *Ops[] = {"-", "!", "~"};
      std::string Op = Ops[R.nextBelow(3)];
      return Op + "(" + expr(Depth - 1) + ")";
    }
    case 2: { // array element (indices may be arbitrary: loads wrap)
      if (Arrays.empty())
        return readable();
      std::string Arr = R.pick(Arrays);
      return Arr + "[" + expr(Depth - 1) + "]";
    }
    case 3: { // helper call
      if (CalleeLimit == 0)
        return readable();
      uint32_t H = static_cast<uint32_t>(R.nextBelow(CalleeLimit));
      if (CurCost + HelperCost[H] > MaxBodyCost)
        return readable();
      CurCost += HelperCost[H];
      std::string S = "h";
      S += std::to_string(H);
      S += "(";
      uint32_t Arity = helperArity(H);
      // One expr() per statement: C++ leaves the evaluation order of
      // calls inside a full-expression unspecified, and each call
      // advances the generator, so chaining them into one concatenation
      // would make the emitted source compiler-dependent.
      for (uint32_t A = 0; A != Arity; ++A) {
        if (A)
          S += ", ";
        S += expr(Depth - 1);
      }
      return S + ")";
    }
    default: { // binary
      static const char *Ops[] = {"+",  "-",  "*",  "/",  "%",  "<<",
                                  ">>", "<",  "<=", ">",  ">=", "==",
                                  "!=", "&",  "^",  "|",  "&&", "||"};
      const char *Op = Ops[R.nextBelow(sizeof(Ops) / sizeof(Ops[0]))];
      std::string L = expr(Depth - 1);
      std::string Rr = expr(Depth - 1);
      return "(" + L + " " + Op + " " + Rr + ")";
    }
    }
  }

  /// Helper arity is a pure function of (seed, index) so call sites and
  /// the definition agree without extra bookkeeping.
  uint32_t helperArity(uint32_t H) {
    return 1 + static_cast<uint32_t>(Rng::taskSeed(P.Seed, H) % 3);
  }

  void stmt(uint32_t Depth, bool InLoop) {
    CurCost += 2;
    switch (R.nextBelow(Depth == 0 ? 4u : 7u)) {
    case 0: { // new scalar
      std::string V = "v";
      V += std::to_string(NextScalar++);
      line("int " + V + " = " + expr(2) + ";");
      Scalars.push_back(V);
      Readables.push_back(V);
      return;
    }
    case 1: // assignment (fall through to 2 when there is no target)
      if (!Scalars.empty()) {
        std::string Target = R.pick(Scalars);
        line(Target + " = " + expr(2) + ";");
        return;
      }
      [[fallthrough]];
    case 2: // array store
      if (!Arrays.empty()) {
        std::string Arr = R.pick(Arrays);
        std::string Idx = expr(1);
        line(Arr + "[" + Idx + "] = " + expr(2) + ";");
        return;
      }
      {
        std::string V = "v";
        V += std::to_string(NextScalar++);
        line("int " + V + " = " + expr(2) + ";");
        Readables.push_back(V);
        Scalars.push_back(V);
      }
      return;
    case 3: // break/continue, else expression statement
      if (InLoop && R.withChance(1, 4)) {
        line(R.withChance(1, 2) ? "break;" : "continue;");
        return;
      }
      line(expr(2) + ";");
      return;
    case 4: { // if / if-else
      line("if (" + expr(2) + ") {");
      block(Depth - 1, InLoop);
      if (R.withChance(1, 2)) {
        line("} else {");
        block(Depth - 1, InLoop);
      }
      line("}");
      return;
    }
    case 5: { // counted for loop — termination-safe by construction
      std::string IV = "i";
      IV += std::to_string(NextLoopVar++);
      uint64_t Trip = 1 + R.nextBelow(P.MaxLoopTrip);
      line("for (int " + IV + " = 0; " + IV + " < " +
           std::to_string(Trip) + "; " + IV + " = " + IV + " + 1) {");
      Readables.push_back(IV);
      block(Depth - 1, /*InLoop=*/true);
      Readables.pop_back();
      line("}");
      return;
    }
    default: // bare nested block (exercises scoping/shadowing paths)
      line("{");
      block(Depth - 1, InLoop);
      line("}");
      return;
    }
  }

  void block(uint32_t Depth, bool InLoop) {
    ++Indent;
    // Inner declarations shadow-scope out at '}': snapshot the pools.
    size_t NScalars = Scalars.size(), NReadables = Readables.size();
    uint64_t N = 1 + R.nextBelow(P.MaxStmtsPerBlock);
    for (uint64_t I = 0; I != N; ++I)
      stmt(Depth, InLoop);
    Scalars.resize(NScalars);
    Readables.resize(NReadables);
    --Indent;
  }

  void resetFunction(uint32_t CalleeLimitIn) {
    Scalars.clear();
    Readables.clear();
    Arrays.clear();
    CalleeLimit = CalleeLimitIn;
    NextScalar = 0;
    NextLoopVar = 0;
    CurCost = 0;
  }

  void emitHelper(uint32_t H) {
    resetFunction(H);
    uint32_t Arity = helperArity(H);
    std::string Sig = "int h" + std::to_string(H) + "(";
    for (uint32_t A = 0; A != Arity; ++A) {
      std::string PName = "p";
      PName += std::to_string(A);
      Sig += A ? ", int " : "int ";
      Sig += PName;
      Scalars.push_back(PName);
      Readables.push_back(PName);
    }
    line(Sig + ") {");
    block(P.MaxDepth, /*InLoop=*/false);
    ++Indent;
    line("return " + expr(2) + ";");
    --Indent;
    line("}");
    line("");
    // One call to hH expands to the body just generated (whose CurCost
    // already folds in its own callees) plus the argument copies.
    HelperCost.push_back(CurCost + Arity + 2);
  }

  void emitMain() {
    resetFunction(P.NumHelpers);
    line("int main() {");
    ++Indent;
    for (uint32_t A = 0; A != P.NumArrays; ++A) {
      std::string Name = "a";
      Name += std::to_string(A);
      line("int " + Name + "[" + std::to_string(P.ArrayLen) + "];");
      Arrays.push_back(Name);
    }
    --Indent;
    block(P.MaxDepth, /*InLoop=*/false);
    ++Indent;
    line("return " + expr(2) + ";");
    --Indent;
    line("}");
  }
};

} // namespace

CSourceProfile dra::csrcProfileFor(uint64_t Seed) {
  Rng R(Rng::taskSeed(Seed, 0x5ecc));
  CSourceProfile P;
  P.Seed = Seed;
  P.NumHelpers = static_cast<uint32_t>(R.nextBelow(4));
  P.NumArrays = static_cast<uint32_t>(R.nextBelow(3));
  P.ArrayLen = static_cast<uint32_t>(R.nextInRange(4, 16));
  P.MaxStmtsPerBlock = static_cast<uint32_t>(R.nextInRange(3, 6));
  P.MaxDepth = static_cast<uint32_t>(R.nextInRange(2, 3));
  P.MaxLoopTrip = static_cast<uint32_t>(R.nextInRange(2, 8));
  return P;
}

std::string dra::generateCSource(const CSourceProfile &P) {
  return SourceGen(P).run();
}
