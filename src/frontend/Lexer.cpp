//===- frontend/Lexer.cpp - Mini-C tokenizer ------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>

using namespace dra;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// The two-character operators, longest-match-first by construction.
const char *TwoCharOps[] = {"<=", ">=", "==", "!=", "&&", "||", "<<", ">>"};

const char SingleCharOps[] = "+-*/%(){}[];,=<>!&|^~";

} // namespace

bool dra::tokenize(const std::string &Src, std::vector<Token> &Out,
                   CcDiag *D) {
  Out.clear();
  uint32_t Line = 1, Col = 1;
  size_t Pos = 0;

  auto Fail = [&](const std::string &Msg, uint32_t L, uint32_t C) {
    if (D) {
      D->Message = Msg;
      D->Line = L;
      D->Col = C;
    }
    return false;
  };
  auto Advance = [&](size_t N) {
    for (size_t I = 0; I != N; ++I) {
      if (Src[Pos] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
      ++Pos;
    }
  };

  while (Pos < Src.size()) {
    char C = Src[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance(1);
      continue;
    }
    // Comments.
    if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
      while (Pos < Src.size() && Src[Pos] != '\n')
        Advance(1);
      continue;
    }
    if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '*') {
      uint32_t OpenLine = Line, OpenCol = Col;
      Advance(2);
      bool Closed = false;
      while (Pos < Src.size()) {
        if (Src[Pos] == '*' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
          Advance(2);
          Closed = true;
          break;
        }
        Advance(1);
      }
      if (!Closed)
        return Fail("unterminated block comment", OpenLine, OpenCol);
      continue;
    }

    Token T;
    T.Line = Line;
    T.Col = Col;

    if (isIdentStart(C)) {
      size_t Start = Pos;
      while (Pos < Src.size() && isIdentChar(Src[Pos]))
        Advance(1);
      T.Kind = TokKind::Ident;
      T.Text = Src.substr(Start, Pos - Start);
      Out.push_back(std::move(T));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      uint64_t Val = 0;
      bool Overflow = false;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
        uint64_t Digit = static_cast<uint64_t>(Src[Pos] - '0');
        if (Val > (UINT64_MAX - Digit) / 10)
          Overflow = true;
        else
          Val = Val * 10 + Digit;
        Advance(1);
      }
      // Literals are non-negative; `-` is a unary operator. The largest
      // accepted literal is INT64_MAX (the parser folds `-` around it).
      if (Overflow || Val > static_cast<uint64_t>(INT64_MAX))
        return Fail("integer literal out of range", T.Line, T.Col);
      if (Pos < Src.size() && isIdentStart(Src[Pos]))
        return Fail("malformed number (letter after digits)", T.Line,
                    T.Col);
      T.Kind = TokKind::Num;
      T.Num = static_cast<int64_t>(Val);
      T.Text = Src.substr(Start, Pos - Start);
      Out.push_back(std::move(T));
      continue;
    }

    bool Matched = false;
    for (const char *Op : TwoCharOps) {
      if (Pos + 1 < Src.size() && Src[Pos] == Op[0] && Src[Pos + 1] == Op[1]) {
        T.Kind = TokKind::Punct;
        T.Text = Op;
        Advance(2);
        Out.push_back(std::move(T));
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;

    for (char Op : SingleCharOps) {
      if (C == Op) {
        T.Kind = TokKind::Punct;
        T.Text = std::string(1, C);
        Advance(1);
        Out.push_back(std::move(T));
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;

    return Fail(std::string("unexpected character '") + C + "'", Line, Col);
  }

  Token Eof;
  Eof.Kind = TokKind::Eof;
  Eof.Line = Line;
  Eof.Col = Col;
  Out.push_back(std::move(Eof));
  return true;
}
