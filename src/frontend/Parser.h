//===- frontend/Parser.h - Mini-C recursive-descent parser ------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the mini-C subset (grammar in DESIGN.md
/// "Mini-C frontend"). Operator precedence and associativity follow C:
///
///   =                                (right)
///   || && | ^ & == != < <= > >= << >> + - * / %   (left, loosest first)
///   unary + - ! ~                    (right)
///   postfix a[i] f(...)              (on identifiers)
///
/// Every syntax error carries the line/column of the offending token.
/// Distinct from ir/Parser.h, which parses the textual IR.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FRONTEND_PARSER_H
#define DRA_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Diag.h"
#include "frontend/Lexer.h"

#include <optional>
#include <string>

namespace dra {

/// Parses a whole translation unit from \p Toks (a tokenize() result).
/// On failure returns std::nullopt with the diagnostic in \p D.
std::optional<CProgram> parseCProgram(const std::vector<Token> &Toks,
                                      CcDiag *D = nullptr);

/// Convenience: tokenize + parse in one call.
std::optional<CProgram> parseCSource(const std::string &Src,
                                     CcDiag *D = nullptr);

} // namespace dra

#endif // DRA_FRONTEND_PARSER_H
