//===- frontend/Lower.cpp - Mini-C AST -> dra IR lowering -----------------===//

#include "frontend/Lower.h"

#include "ir/IRBuilder.h"

#include <unordered_map>
#include <vector>

using namespace dra;

namespace {

/// One named value: a scalar living in a virtual register, or an array
/// living at a fixed base offset in the function's data memory.
struct VarInfo {
  bool IsArray = false;
  RegId Reg = NoReg;     ///< Scalar location.
  uint32_t MemBase = 0;  ///< Array base word offset.
  uint32_t Len = 0;      ///< Array length in words.
};

/// Loop targets for break/continue.
struct LoopCtx {
  uint32_t ContinueBB;
  uint32_t BreakBB;
};

/// One inline-expansion frame. The bottom frame is `main` (returns via
/// Ret); every other frame routes `return` to its call's join block.
struct Frame {
  const CFunc *Fn;
  size_t ScopeBase; ///< First scope index belonging to this frame.
  size_t LoopBase;  ///< First loop context belonging to this frame.
  RegId ResultReg = NoReg;  ///< NoReg in the bottom frame.
  uint32_t JoinBB = NoBlock;
};

class Lowering {
public:
  Lowering(const CProgram &P, const std::string &Name, CcDiag *D,
           const LowerOptions &O)
      : Prog(P), D(D), Opts(O), B(F) {
    F.Name = Name;
    for (const CFunc &Fn : P.Funcs)
      FuncsByName[Fn.Name] = &Fn;
  }

  std::optional<Function> run() {
    auto It = FuncsByName.find("main");
    if (It == FuncsByName.end())
      return fail("program has no 'main' function", 0, 0);
    const CFunc *Main = It->second;
    if (!Main->Params.empty())
      return fail("'main' must take no parameters", Main->Line, Main->Col);

    B.setBlock(F.makeBlock());
    Frames.push_back(Frame{Main, 0, 0, NoReg, NoBlock});
    Scopes.emplace_back();
    if (!lowerStmt(*Main->Body))
      return std::nullopt;
    // Falling off the end of main returns 0 (as C99 main does).
    if (!blockTerminated())
      B.createRet(B.createMovImm(0));
    Scopes.pop_back();
    Frames.pop_back();

    F.MemWords = MemTop;
    F.recomputeCFG();
    std::string Err;
    if (!verifyFunction(F, &Err))
      return fail("internal error: lowered function invalid: " + Err, 0, 0);
    return std::move(F);
  }

private:
  const CProgram &Prog;
  CcDiag *D;
  LowerOptions Opts;
  Function F;
  IRBuilder B;
  std::unordered_map<std::string, const CFunc *> FuncsByName;
  std::vector<Frame> Frames;
  std::vector<std::unordered_map<std::string, VarInfo>> Scopes;
  std::vector<LoopCtx> Loops;
  uint32_t MemTop = 0;
  size_t StmtsSinceSizeCheck = 0;
  bool Failed = false;

  std::nullopt_t fail(const std::string &Msg, uint32_t Line, uint32_t Col) {
    if (D && !Failed) {
      D->Message = Msg;
      D->Line = Line;
      D->Col = Col;
    }
    Failed = true;
    return std::nullopt;
  }
  /// Statement/expression-level failure helper: false with diagnostic.
  bool failStmt(const std::string &Msg, uint32_t Line, uint32_t Col) {
    fail(Msg, Line, Col);
    return false;
  }

  bool blockTerminated() const {
    const BasicBlock &BB = F.Blocks[B.currentBlock()];
    return !BB.Insts.empty() && BB.Insts.back().isTerminator();
  }

  /// Statements after a terminator open a fresh (unreachable) block so
  /// code like `return 1; x = 2;` still lowers to a valid CFG.
  void ensureOpenBlock() {
    if (blockTerminated())
      B.setBlock(F.makeBlock());
  }

  VarInfo *lookup(const std::string &Name) {
    // Name lookup never crosses an inline frame: an inlined callee sees
    // only its own parameters and locals.
    size_t Base = Frames.back().ScopeBase;
    for (size_t I = Scopes.size(); I-- > Base;) {
      auto It = Scopes[I].find(Name);
      if (It != Scopes[I].end())
        return &It->second;
    }
    return nullptr;
  }

  /// Bounds the inline-expanded program. Cheap amortized check: blocks
  /// are counted exactly, instructions every 64 statements.
  bool checkSize(uint32_t Line, uint32_t Col) {
    if (F.Blocks.size() > Opts.MaxBlocks)
      return failStmt("program too large after inlining (more than " +
                          std::to_string(Opts.MaxBlocks) + " blocks)",
                      Line, Col);
    if (++StmtsSinceSizeCheck >= 64) {
      StmtsSinceSizeCheck = 0;
      if (F.numInsts() > Opts.MaxInsts)
        return failStmt("program too large after inlining (more than " +
                            std::to_string(Opts.MaxInsts) +
                            " instructions)",
                        Line, Col);
    }
    return true;
  }

  /// Materializes the constant 0 for the reg-reg compare forms.
  RegId zero() { return B.createMovImm(0); }

  /// Normalizes \p V to 0/1.
  RegId toBool(RegId V) { return B.createBin(Opcode::CmpNE, V, zero()); }

  //===--------------------------------------------------------------===//
  // Expressions. Each returns the value's register (NoReg on failure).
  // Operands are evaluated left to right, each to a value — so an
  // assignment inside an expression affects only later operands.
  //===--------------------------------------------------------------===//

  RegId lowerExpr(const CExpr &E) {
    switch (E.K) {
    case CExpr::Kind::Num:
      return B.createMovImm(E.Num);
    case CExpr::Kind::Var: {
      VarInfo *V = lookup(E.Name);
      if (!V) {
        failStmt("undeclared identifier '" + E.Name + "'", E.Line, E.Col);
        return NoReg;
      }
      if (V->IsArray) {
        failStmt("array '" + E.Name +
                     "' cannot be used as a value (index it, or pass it "
                     "to an 'int name[]' parameter)",
                 E.Line, E.Col);
        return NoReg;
      }
      // Copy out: the temporary must keep its value even if the variable
      // is reassigned later in the same expression.
      return B.createMov(V->Reg);
    }
    case CExpr::Kind::Unary: {
      RegId V = lowerExpr(*E.Lhs);
      if (V == NoReg)
        return NoReg;
      switch (E.Un) {
      case CUnOp::Neg:
        return B.createBin(Opcode::Sub, zero(), V);
      case CUnOp::LogNot:
        return B.createBin(Opcode::CmpEQ, V, zero());
      case CUnOp::BitNot:
        return B.createBinImm(Opcode::XorI, V, -1);
      }
      return NoReg;
    }
    case CExpr::Kind::Binary:
      return lowerBinary(E);
    case CExpr::Kind::Assign:
      return lowerAssign(E);
    case CExpr::Kind::Index: {
      RegId Base;
      uint32_t Off;
      if (!arrayRef(E, Base, Off))
        return NoReg;
      return B.createLoad(Base, Off);
    }
    case CExpr::Kind::Call:
      return lowerCall(E);
    }
    return NoReg;
  }

  /// Evaluates the index of `Name[Idx]` and resolves the array's base
  /// offset. On success \p BaseOut holds the index register and
  /// \p OffOut the array's base word offset.
  bool arrayRef(const CExpr &E, RegId &BaseOut, uint32_t &OffOut) {
    VarInfo *V = lookup(E.Name);
    if (!V)
      return failStmt("undeclared identifier '" + E.Name + "'", E.Line,
                      E.Col);
    if (!V->IsArray)
      return failStmt("'" + E.Name + "' is not an array", E.Line, E.Col);
    RegId Idx = lowerExpr(*E.Lhs);
    if (Idx == NoReg)
      return false;
    BaseOut = Idx;
    OffOut = V->MemBase;
    return true;
  }

  RegId lowerBinary(const CExpr &E) {
    if (E.Bin == CBinOp::LogAnd || E.Bin == CBinOp::LogOr)
      return lowerShortCircuit(E);

    RegId L = lowerExpr(*E.Lhs);
    if (L == NoReg)
      return NoReg;
    RegId R = lowerExpr(*E.Rhs);
    if (R == NoReg)
      return NoReg;
    switch (E.Bin) {
    case CBinOp::Add:
      return B.createBin(Opcode::Add, L, R);
    case CBinOp::Sub:
      return B.createBin(Opcode::Sub, L, R);
    case CBinOp::Mul:
      return B.createBin(Opcode::Mul, L, R);
    case CBinOp::Div:
      return B.createBin(Opcode::DivS, L, R);
    case CBinOp::Rem:
      return B.createBin(Opcode::Rem, L, R);
    case CBinOp::Shl:
      return B.createBin(Opcode::Shl, L, R);
    case CBinOp::Shr:
      return B.createBin(Opcode::Shr, L, R);
    case CBinOp::Lt:
      return B.createBin(Opcode::CmpLT, L, R);
    case CBinOp::Le:
      return B.createBin(Opcode::CmpLE, L, R);
    case CBinOp::Gt:
      return B.createBin(Opcode::CmpLT, R, L);
    case CBinOp::Ge:
      return B.createBin(Opcode::CmpLE, R, L);
    case CBinOp::Eq:
      return B.createBin(Opcode::CmpEQ, L, R);
    case CBinOp::Ne:
      return B.createBin(Opcode::CmpNE, L, R);
    case CBinOp::BitAnd:
      return B.createBin(Opcode::And, L, R);
    case CBinOp::BitXor:
      return B.createBin(Opcode::Xor, L, R);
    case CBinOp::BitOr:
      return B.createBin(Opcode::Or, L, R);
    case CBinOp::LogAnd:
    case CBinOp::LogOr:
      break;
    }
    return NoReg;
  }

  /// `a && b` / `a || b` with C's short-circuit evaluation: the result
  /// register is written on every path, the right operand's code runs
  /// only when needed, and the value is normalized to 0/1.
  RegId lowerShortCircuit(const CExpr &E) {
    bool IsAnd = E.Bin == CBinOp::LogAnd;
    RegId Result = F.makeReg();
    RegId L = lowerExpr(*E.Lhs);
    if (L == NoReg)
      return NoReg;
    uint32_t RhsBB = F.makeBlock();
    uint32_t ShortBB = F.makeBlock();
    uint32_t EndBB = F.makeBlock();
    // && falls to the short-circuit 0 when the lhs is false; || takes the
    // short-circuit 1 when the lhs is true.
    if (IsAnd)
      B.createBr(L, RhsBB, ShortBB);
    else
      B.createBr(L, ShortBB, RhsBB);

    B.setBlock(RhsBB);
    RegId R = lowerExpr(*E.Rhs);
    if (R == NoReg)
      return NoReg;
    B.createBinTo(Opcode::CmpNE, Result, R, zero());
    B.createJmp(EndBB);

    B.setBlock(ShortBB);
    B.createMovImmTo(Result, IsAnd ? 0 : 1);
    B.createJmp(EndBB);

    B.setBlock(EndBB);
    return Result;
  }

  RegId lowerAssign(const CExpr &E) {
    const CExpr &Target = *E.Lhs;
    if (Target.K == CExpr::Kind::Var) {
      VarInfo *V = lookup(Target.Name);
      if (!V) {
        failStmt("undeclared identifier '" + Target.Name + "'", Target.Line,
                 Target.Col);
        return NoReg;
      }
      if (V->IsArray) {
        failStmt("cannot assign to array '" + Target.Name + "'",
                 Target.Line, Target.Col);
        return NoReg;
      }
      RegId Val = lowerExpr(*E.Rhs);
      if (Val == NoReg)
        return NoReg;
      B.createMovTo(V->Reg, Val);
      return Val;
    }
    // a[i] = v: index first, value second (left to right).
    RegId Idx;
    uint32_t Off;
    if (!arrayRef(Target, Idx, Off))
      return NoReg;
    RegId Val = lowerExpr(*E.Rhs);
    if (Val == NoReg)
      return NoReg;
    B.createStore(Idx, Off, Val);
    return Val;
  }

  RegId lowerCall(const CExpr &E) {
    auto It = FuncsByName.find(E.Name);
    if (It == FuncsByName.end()) {
      failStmt("call to undefined function '" + E.Name + "'", E.Line,
               E.Col);
      return NoReg;
    }
    const CFunc *Callee = It->second;
    for (const Frame &Fr : Frames)
      if (Fr.Fn == Callee) {
        std::string Chain;
        for (const Frame &Fr2 : Frames)
          Chain += Fr2.Fn->Name + " -> ";
        failStmt("recursive call chain " + Chain + Callee->Name +
                     " (calls are inlined; recursion is not supported)",
                 E.Line, E.Col);
        return NoReg;
      }
    if (E.Args.size() != Callee->Params.size()) {
      failStmt("'" + E.Name + "' expects " +
                   std::to_string(Callee->Params.size()) +
                   " argument(s), got " + std::to_string(E.Args.size()),
               E.Line, E.Col);
      return NoReg;
    }

    // Evaluate arguments left to right in the caller's frame. Scalar
    // parameters get a fresh register copy; array parameters bind by
    // reference to the caller's array storage.
    std::unordered_map<std::string, VarInfo> ParamScope;
    for (size_t I = 0; I != E.Args.size(); ++I) {
      const CParam &P = Callee->Params[I];
      const CExpr &Arg = *E.Args[I];
      VarInfo Slot;
      if (P.IsArray) {
        if (Arg.K != CExpr::Kind::Var) {
          failStmt("argument " + std::to_string(I + 1) + " of '" + E.Name +
                       "' must name an array (parameter '" + P.Name +
                       "' is 'int " + P.Name + "[]')",
                   Arg.Line, Arg.Col);
          return NoReg;
        }
        VarInfo *V = lookup(Arg.Name);
        if (!V) {
          failStmt("undeclared identifier '" + Arg.Name + "'", Arg.Line,
                   Arg.Col);
          return NoReg;
        }
        if (!V->IsArray) {
          failStmt("'" + Arg.Name + "' is not an array (parameter '" +
                       P.Name + "' is 'int " + P.Name + "[]')",
                   Arg.Line, Arg.Col);
          return NoReg;
        }
        Slot = *V;
      } else {
        RegId Val = lowerExpr(Arg);
        if (Val == NoReg)
          return NoReg;
        Slot.Reg = F.makeReg();
        B.createMovTo(Slot.Reg, Val);
      }
      ParamScope[P.Name] = Slot;
    }

    // Splice the callee body in: fresh frame, params as innermost scope.
    RegId Result = F.makeReg();
    uint32_t JoinBB = F.makeBlock();
    Frames.push_back(
        Frame{Callee, Scopes.size(), Loops.size(), Result, JoinBB});
    Scopes.push_back(std::move(ParamScope));
    if (!lowerStmt(*Callee->Body))
      return NoReg;
    if (!blockTerminated()) {
      // Falling off the end of a function returns 0.
      B.createMovImmTo(Result, 0);
      B.createJmp(JoinBB);
    }
    Scopes.pop_back();
    Frames.pop_back();
    B.setBlock(JoinBB);
    return Result;
  }

  //===--------------------------------------------------------------===//
  // Statements. Return false on failure.
  //===--------------------------------------------------------------===//

  bool lowerStmt(const CStmt &S) {
    ensureOpenBlock();
    if (!checkSize(S.Line, S.Col))
      return false;
    switch (S.K) {
    case CStmt::Kind::Empty:
      return true;
    case CStmt::Kind::Expr:
      return lowerExpr(*S.Init) != NoReg;
    case CStmt::Kind::Decl:
      return lowerDecl(S);
    case CStmt::Kind::Block: {
      Scopes.emplace_back();
      for (const auto &Child : S.Body)
        if (!lowerStmt(*Child)) {
          Scopes.pop_back();
          return false;
        }
      Scopes.pop_back();
      return true;
    }
    case CStmt::Kind::If:
      return lowerIf(S);
    case CStmt::Kind::While:
      return lowerWhile(S);
    case CStmt::Kind::For:
      return lowerFor(S);
    case CStmt::Kind::Return:
      return lowerReturn(S);
    case CStmt::Kind::Break:
    case CStmt::Kind::Continue: {
      if (Loops.size() <= Frames.back().LoopBase)
        return failStmt(S.K == CStmt::Kind::Break
                            ? "'break' outside of a loop"
                            : "'continue' outside of a loop",
                        S.Line, S.Col);
      const LoopCtx &L = Loops.back();
      B.createJmp(S.K == CStmt::Kind::Break ? L.BreakBB : L.ContinueBB);
      return true;
    }
    }
    return false;
  }

  bool lowerDecl(const CStmt &S) {
    if (Scopes.back().count(S.Name))
      return failStmt("redeclaration of '" + S.Name + "' in this scope",
                      S.Line, S.Col);
    VarInfo V;
    if (S.IsArray) {
      V.IsArray = true;
      // Subtract from the budget side: MaxMemWords - ArrayLen underflows
      // when a single array is bigger than the whole budget.
      if (S.ArrayLen > Opts.MaxMemWords - MemTop)
        return failStmt("arrays exceed the data-memory budget of " +
                            std::to_string(Opts.MaxMemWords) + " words",
                        S.Line, S.Col);
      V.MemBase = MemTop;
      V.Len = S.ArrayLen;
      MemTop += S.ArrayLen;
    } else {
      V.Reg = F.makeReg();
      if (S.Init) {
        RegId Val = lowerExpr(*S.Init);
        if (Val == NoReg)
          return false;
        B.createMovTo(V.Reg, Val);
      } else {
        // Uninitialized scalars read 0 (defined, unlike C).
        B.createMovImmTo(V.Reg, 0);
      }
    }
    // Re-fetch the scope: lowering a call in the initializer pushes onto
    // Scopes, and vector growth invalidates references taken before it.
    Scopes.back()[S.Name] = V;
    return true;
  }

  bool lowerIf(const CStmt &S) {
    RegId C = lowerExpr(*S.Cond);
    if (C == NoReg)
      return false;
    uint32_t ThenBB = F.makeBlock();
    uint32_t EndBB = F.makeBlock();
    uint32_t ElseBB = S.Else ? F.makeBlock() : EndBB;
    B.createBr(C, ThenBB, ElseBB);

    B.setBlock(ThenBB);
    if (!lowerStmt(*S.Then))
      return false;
    if (!blockTerminated())
      B.createJmp(EndBB);
    if (S.Else) {
      B.setBlock(ElseBB);
      if (!lowerStmt(*S.Else))
        return false;
      if (!blockTerminated())
        B.createJmp(EndBB);
    }
    B.setBlock(EndBB);
    return true;
  }

  bool lowerWhile(const CStmt &S) {
    uint32_t CondBB = F.makeBlock();
    B.createJmp(CondBB);
    B.setBlock(CondBB);
    RegId C = lowerExpr(*S.Cond);
    if (C == NoReg)
      return false;
    uint32_t BodyBB = F.makeBlock();
    uint32_t EndBB = F.makeBlock();
    B.createBr(C, BodyBB, EndBB);

    B.setBlock(BodyBB);
    Loops.push_back(LoopCtx{CondBB, EndBB});
    bool Ok = lowerStmt(*S.Then);
    Loops.pop_back();
    if (!Ok)
      return false;
    if (!blockTerminated())
      B.createJmp(CondBB);
    B.setBlock(EndBB);
    return true;
  }

  bool lowerFor(const CStmt &S) {
    // The init clause's declaration is scoped to the loop.
    Scopes.emplace_back();
    bool Ok = lowerForInner(S);
    Scopes.pop_back();
    return Ok;
  }

  bool lowerForInner(const CStmt &S) {
    if (!lowerStmt(*S.ForInit))
      return false;
    uint32_t CondBB = F.makeBlock();
    B.createJmp(CondBB);
    B.setBlock(CondBB);
    RegId C = S.Cond ? lowerExpr(*S.Cond) : B.createMovImm(1);
    if (C == NoReg)
      return false;
    uint32_t BodyBB = F.makeBlock();
    uint32_t StepBB = F.makeBlock();
    uint32_t EndBB = F.makeBlock();
    B.createBr(C, BodyBB, EndBB);

    B.setBlock(BodyBB);
    Loops.push_back(LoopCtx{StepBB, EndBB});
    bool Ok = lowerStmt(*S.Then);
    Loops.pop_back();
    if (!Ok)
      return false;
    if (!blockTerminated())
      B.createJmp(StepBB);

    B.setBlock(StepBB);
    if (S.ForStep && lowerExpr(*S.ForStep) == NoReg)
      return false;
    B.createJmp(CondBB);
    B.setBlock(EndBB);
    return true;
  }

  bool lowerReturn(const CStmt &S) {
    RegId Val;
    if (S.Init) {
      Val = lowerExpr(*S.Init);
      if (Val == NoReg)
        return false;
    } else {
      Val = B.createMovImm(0);
    }
    const Frame &Fr = Frames.back();
    if (Fr.ResultReg == NoReg) {
      B.createRet(Val);
    } else {
      B.createMovTo(Fr.ResultReg, Val);
      B.createJmp(Fr.JoinBB);
    }
    return true;
  }
};

} // namespace

std::optional<Function> dra::lowerCProgram(const CProgram &P,
                                           const std::string &Name,
                                           CcDiag *D,
                                           const LowerOptions &O) {
  return Lowering(P, Name, D, O).run();
}
