//===- frontend/Frontend.cpp - Mini-C compile entry points ----------------===//

#include "frontend/Frontend.h"

#include "frontend/Parser.h"

#include <cctype>
#include <sstream>

using namespace dra;

std::optional<Function> dra::compileCSource(const std::string &Name,
                                            const std::string &Source,
                                            CcDiag *D,
                                            const LowerOptions &O) {
  auto P = parseCSource(Source, D);
  if (!P)
    return std::nullopt;
  return lowerCProgram(*P, Name, D, O);
}

std::optional<int64_t> dra::expectedReturnAnnotation(const std::string &Source) {
  std::istringstream SS(Source);
  std::string Line;
  while (std::getline(SS, Line)) {
    size_t Pos = Line.find("// expect:");
    if (Pos == std::string::npos)
      continue;
    size_t I = Pos + 10;
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    bool Neg = false;
    if (I < Line.size() && Line[I] == '-') {
      Neg = true;
      ++I;
    }
    if (I >= Line.size() || !std::isdigit(static_cast<unsigned char>(Line[I])))
      continue;
    // Accumulate in unsigned space so INT64_MIN round-trips.
    uint64_t Mag = 0;
    bool Overflow = false;
    size_t Start = I;
    for (; I < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[I]));
         ++I) {
      uint64_t Digit = static_cast<uint64_t>(Line[I] - '0');
      if (Mag > (UINT64_MAX - Digit) / 10) {
        Overflow = true;
        break;
      }
      Mag = Mag * 10 + Digit;
    }
    uint64_t Limit =
        Neg ? (static_cast<uint64_t>(INT64_MAX) + 1) : INT64_MAX;
    if (Overflow || Mag > Limit || I == Start)
      continue;
    // Negate in unsigned space so INT64_MIN does not trip signed UB.
    return static_cast<int64_t>(Neg ? 0 - Mag : Mag);
  }
  return std::nullopt;
}
