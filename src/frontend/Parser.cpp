//===- frontend/Parser.cpp - Mini-C recursive-descent parser --------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace dra;

namespace {

/// The reserved words of the subset. `int` is the only type.
bool isKeyword(const std::string &S) {
  return S == "int" || S == "if" || S == "else" || S == "while" ||
         S == "for" || S == "return" || S == "break" || S == "continue";
}

class ParserImpl {
public:
  ParserImpl(const std::vector<Token> &Toks, CcDiag *D) : Toks(Toks), D(D) {
    assert(!Toks.empty() && Toks.back().Kind == TokKind::Eof &&
           "token stream must be Eof-terminated");
  }

  std::optional<CProgram> run() {
    CProgram P;
    while (!at(TokKind::Eof)) {
      std::optional<CFunc> F = parseFunc();
      if (!F)
        return std::nullopt;
      for (const CFunc &Prev : P.Funcs)
        if (Prev.Name == F->Name)
          return err("redefinition of function '" + F->Name + "'", F->Line,
                     F->Col);
      P.Funcs.push_back(std::move(*F));
    }
    if (P.Funcs.empty())
      return err("empty translation unit (expected at least 'int main()')");
    return P;
  }

private:
  const std::vector<Token> &Toks;
  CcDiag *D;
  size_t Pos = 0;
  bool Failed = false;

  const Token &cur() const { return Toks[Pos]; }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool atPunct(const char *S) const {
    return cur().Kind == TokKind::Punct && cur().Text == S;
  }
  bool atIdent(const char *S) const {
    return cur().Kind == TokKind::Ident && cur().Text == S;
  }
  void advance() {
    if (!at(TokKind::Eof))
      ++Pos;
  }
  bool eatPunct(const char *S) {
    if (!atPunct(S))
      return false;
    advance();
    return true;
  }
  bool eatIdent(const char *S) {
    if (!atIdent(S))
      return false;
    advance();
    return true;
  }

  std::nullopt_t err(const std::string &Msg, uint32_t Line, uint32_t Col) {
    if (D && !Failed) {
      D->Message = Msg;
      D->Line = Line;
      D->Col = Col;
    }
    Failed = true;
    return std::nullopt;
  }
  std::nullopt_t err(const std::string &Msg) {
    return err(Msg, cur().Line, cur().Col);
  }
  std::nullopt_t errHere(const std::string &Expected) {
    std::string Got = at(TokKind::Eof) ? "end of input"
                                       : "'" + cur().Text + "'";
    return err("expected " + Expected + ", got " + Got);
  }

  /// Consumes punctuation \p S or fails with "expected 'S'".
  bool expectPunct(const char *S) {
    if (eatPunct(S))
      return true;
    errHere(std::string("'") + S + "'");
    return false;
  }

  /// Consumes a non-keyword identifier; fails otherwise.
  std::optional<std::string> expectName(const char *What) {
    if (!at(TokKind::Ident) || isKeyword(cur().Text)) {
      errHere(What);
      return std::nullopt;
    }
    std::string Name = cur().Text;
    advance();
    return Name;
  }

  // funcdef := "int" ident "(" [param ("," param)*] ")" block
  std::optional<CFunc> parseFunc() {
    CFunc F;
    F.Line = cur().Line;
    F.Col = cur().Col;
    if (!eatIdent("int")) {
      errHere("'int' (a function definition)");
      return std::nullopt;
    }
    std::optional<std::string> Name = expectName("a function name");
    if (!Name)
      return std::nullopt;
    F.Name = std::move(*Name);
    if (!expectPunct("("))
      return std::nullopt;
    if (!atPunct(")")) {
      do {
        CParam P;
        P.Line = cur().Line;
        P.Col = cur().Col;
        if (!eatIdent("int")) {
          errHere("'int' (a parameter type)");
          return std::nullopt;
        }
        std::optional<std::string> PName = expectName("a parameter name");
        if (!PName)
          return std::nullopt;
        P.Name = std::move(*PName);
        if (eatPunct("[")) {
          if (!expectPunct("]"))
            return std::nullopt;
          P.IsArray = true;
        }
        for (const CParam &Prev : F.Params)
          if (Prev.Name == P.Name) {
            err("duplicate parameter name '" + P.Name + "'", P.Line, P.Col);
            return std::nullopt;
          }
        F.Params.push_back(std::move(P));
      } while (eatPunct(","));
    }
    if (!expectPunct(")"))
      return std::nullopt;
    if (!atPunct("{")) {
      errHere("'{' (a function body)");
      return std::nullopt;
    }
    F.Body = parseBlock();
    if (!F.Body)
      return std::nullopt;
    return F;
  }

  std::unique_ptr<CStmt> parseBlock() {
    auto S = std::make_unique<CStmt>();
    S->K = CStmt::Kind::Block;
    S->Line = cur().Line;
    S->Col = cur().Col;
    if (!expectPunct("{"))
      return nullptr;
    while (!atPunct("}")) {
      if (at(TokKind::Eof)) {
        err("unclosed '{' (expected '}')", S->Line, S->Col);
        return nullptr;
      }
      std::unique_ptr<CStmt> Child = parseStmt();
      if (!Child)
        return nullptr;
      S->Body.push_back(std::move(Child));
    }
    advance(); // '}'
    return S;
  }

  std::unique_ptr<CStmt> parseStmt() {
    uint32_t Line = cur().Line, Col = cur().Col;
    auto Mk = [&](CStmt::Kind K) {
      auto S = std::make_unique<CStmt>();
      S->K = K;
      S->Line = Line;
      S->Col = Col;
      return S;
    };

    if (atPunct("{"))
      return parseBlock();
    if (eatPunct(";"))
      return Mk(CStmt::Kind::Empty);

    if (eatIdent("if")) {
      auto S = Mk(CStmt::Kind::If);
      if (!expectPunct("("))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expectPunct(")"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      if (eatIdent("else")) {
        S->Else = parseStmt();
        if (!S->Else)
          return nullptr;
      }
      return S;
    }

    if (eatIdent("while")) {
      auto S = Mk(CStmt::Kind::While);
      if (!expectPunct("("))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expectPunct(")"))
        return nullptr;
      S->Then = parseStmt();
      return S->Then ? std::move(S) : nullptr;
    }

    if (eatIdent("for")) {
      auto S = Mk(CStmt::Kind::For);
      if (!expectPunct("("))
        return nullptr;
      // Clause 1: declaration, expression statement, or empty.
      if (atIdent("int")) {
        S->ForInit = parseDecl();
      } else if (eatPunct(";")) {
        auto E = std::make_unique<CStmt>();
        E->K = CStmt::Kind::Empty;
        E->Line = Line;
        E->Col = Col;
        S->ForInit = std::move(E);
      } else {
        auto E = std::make_unique<CStmt>();
        E->K = CStmt::Kind::Expr;
        E->Line = cur().Line;
        E->Col = cur().Col;
        E->Init = parseExpr();
        if (!E->Init || !expectPunct(";"))
          return nullptr;
        S->ForInit = std::move(E);
      }
      if (!S->ForInit)
        return nullptr;
      // Clause 2: optional condition.
      if (!atPunct(";")) {
        S->Cond = parseExpr();
        if (!S->Cond)
          return nullptr;
      }
      if (!expectPunct(";"))
        return nullptr;
      // Clause 3: optional step.
      if (!atPunct(")")) {
        S->ForStep = parseExpr();
        if (!S->ForStep)
          return nullptr;
      }
      if (!expectPunct(")"))
        return nullptr;
      S->Then = parseStmt();
      return S->Then ? std::move(S) : nullptr;
    }

    if (eatIdent("return")) {
      auto S = Mk(CStmt::Kind::Return);
      if (!atPunct(";")) {
        S->Init = parseExpr();
        if (!S->Init)
          return nullptr;
      }
      return expectPunct(";") ? std::move(S) : nullptr;
    }

    if (eatIdent("break")) {
      auto S = Mk(CStmt::Kind::Break);
      return expectPunct(";") ? std::move(S) : nullptr;
    }
    if (eatIdent("continue")) {
      auto S = Mk(CStmt::Kind::Continue);
      return expectPunct(";") ? std::move(S) : nullptr;
    }

    if (atIdent("int"))
      return parseDecl();

    if (atIdent("else")) {
      errHere("a statement ('else' without a matching 'if')");
      return nullptr;
    }

    // Expression statement.
    auto S = Mk(CStmt::Kind::Expr);
    S->Init = parseExpr();
    if (!S->Init || !expectPunct(";"))
      return nullptr;
    return S;
  }

  // decl := "int" ident ("[" num "]" | ["=" assign]) ";"
  std::unique_ptr<CStmt> parseDecl() {
    auto S = std::make_unique<CStmt>();
    S->K = CStmt::Kind::Decl;
    S->Line = cur().Line;
    S->Col = cur().Col;
    if (!eatIdent("int")) {
      errHere("'int'");
      return nullptr;
    }
    std::optional<std::string> Name = expectName("a variable name");
    if (!Name)
      return nullptr;
    S->Name = std::move(*Name);
    if (eatPunct("[")) {
      S->IsArray = true;
      if (!at(TokKind::Num)) {
        errHere("a constant array length");
        return nullptr;
      }
      int64_t Len = cur().Num;
      if (Len <= 0 || Len > (1 << 20)) {
        err("array length must be in [1, 2^20], got " +
            std::to_string(Len));
        return nullptr;
      }
      S->ArrayLen = static_cast<uint32_t>(Len);
      advance();
      if (!expectPunct("]"))
        return nullptr;
      if (atPunct("=")) {
        errHere("';' (array initializers are not supported)");
        return nullptr;
      }
    } else if (eatPunct("=")) {
      S->Init = parseAssign();
      if (!S->Init)
        return nullptr;
    }
    return expectPunct(";") ? std::move(S) : nullptr;
  }

  std::unique_ptr<CExpr> parseExpr() { return parseAssign(); }

  // assign := logor ["=" assign]
  std::unique_ptr<CExpr> parseAssign() {
    uint32_t Line = cur().Line, Col = cur().Col;
    std::unique_ptr<CExpr> L = parseBinary(0);
    if (!L)
      return nullptr;
    if (!atPunct("="))
      return L;
    if (L->K != CExpr::Kind::Var && L->K != CExpr::Kind::Index) {
      err("assignment target must be a variable or an array element", Line,
          Col);
      return nullptr;
    }
    advance(); // '='
    auto A = std::make_unique<CExpr>();
    A->K = CExpr::Kind::Assign;
    A->Line = Line;
    A->Col = Col;
    A->Lhs = std::move(L);
    A->Rhs = parseAssign();
    return A->Rhs ? std::move(A) : nullptr;
  }

  /// Binary operators by precedence level (loosest first). Level is an
  /// index into this table; all levels are left-associative.
  struct OpEntry {
    const char *Tok;
    CBinOp Op;
  };
  static constexpr int NumLevels = 9;
  const std::vector<OpEntry> &levelOps(int Level) const {
    static const std::vector<OpEntry> Levels[NumLevels] = {
        {{"||", CBinOp::LogOr}},
        {{"&&", CBinOp::LogAnd}},
        {{"|", CBinOp::BitOr}},
        {{"^", CBinOp::BitXor}},
        {{"&", CBinOp::BitAnd}},
        {{"==", CBinOp::Eq}, {"!=", CBinOp::Ne}},
        {{"<=", CBinOp::Le},
         {">=", CBinOp::Ge},
         {"<", CBinOp::Lt},
         {">", CBinOp::Gt}},
        {{"<<", CBinOp::Shl}, {">>", CBinOp::Shr}},
        {{"+", CBinOp::Add}, {"-", CBinOp::Sub}},
    };
    return Levels[Level];
  }

  std::unique_ptr<CExpr> parseBinary(int Level) {
    if (Level == NumLevels)
      return parseMul();
    std::unique_ptr<CExpr> L = parseBinary(Level + 1);
    if (!L)
      return nullptr;
    for (;;) {
      const OpEntry *Hit = nullptr;
      for (const OpEntry &E : levelOps(Level))
        if (atPunct(E.Tok)) {
          Hit = &E;
          break;
        }
      if (!Hit)
        return L;
      uint32_t Line = cur().Line, Col = cur().Col;
      advance();
      std::unique_ptr<CExpr> R = parseBinary(Level + 1);
      if (!R)
        return nullptr;
      auto B = std::make_unique<CExpr>();
      B->K = CExpr::Kind::Binary;
      B->Bin = Hit->Op;
      B->Line = Line;
      B->Col = Col;
      B->Lhs = std::move(L);
      B->Rhs = std::move(R);
      L = std::move(B);
    }
  }

  // mul := unary (("*"|"/"|"%") unary)*
  std::unique_ptr<CExpr> parseMul() {
    std::unique_ptr<CExpr> L = parseUnary();
    if (!L)
      return nullptr;
    for (;;) {
      CBinOp Op;
      if (atPunct("*"))
        Op = CBinOp::Mul;
      else if (atPunct("/"))
        Op = CBinOp::Div;
      else if (atPunct("%"))
        Op = CBinOp::Rem;
      else
        return L;
      uint32_t Line = cur().Line, Col = cur().Col;
      advance();
      std::unique_ptr<CExpr> R = parseUnary();
      if (!R)
        return nullptr;
      auto B = std::make_unique<CExpr>();
      B->K = CExpr::Kind::Binary;
      B->Bin = Op;
      B->Line = Line;
      B->Col = Col;
      B->Lhs = std::move(L);
      B->Rhs = std::move(R);
      L = std::move(B);
    }
  }

  // unary := ("+"|"-"|"!"|"~") unary | primary
  std::unique_ptr<CExpr> parseUnary() {
    uint32_t Line = cur().Line, Col = cur().Col;
    if (eatPunct("+"))
      return parseUnary(); // unary plus is the identity
    CUnOp Op;
    if (eatPunct("-"))
      Op = CUnOp::Neg;
    else if (eatPunct("!"))
      Op = CUnOp::LogNot;
    else if (eatPunct("~"))
      Op = CUnOp::BitNot;
    else
      return parsePrimary();
    std::unique_ptr<CExpr> Operand = parseUnary();
    if (!Operand)
      return nullptr;
    // Fold -LITERAL so INT64_MIN is writable and constants stay literal.
    if (Op == CUnOp::Neg && Operand->K == CExpr::Kind::Num) {
      Operand->Num = -Operand->Num;
      return Operand;
    }
    auto U = std::make_unique<CExpr>();
    U->K = CExpr::Kind::Unary;
    U->Un = Op;
    U->Line = Line;
    U->Col = Col;
    U->Lhs = std::move(Operand);
    return U;
  }

  // primary := num | "(" expr ")" | ident ["(" args ")" | "[" expr "]"]
  std::unique_ptr<CExpr> parsePrimary() {
    uint32_t Line = cur().Line, Col = cur().Col;
    if (at(TokKind::Num)) {
      auto E = std::make_unique<CExpr>();
      E->K = CExpr::Kind::Num;
      E->Num = cur().Num;
      E->Line = Line;
      E->Col = Col;
      advance();
      return E;
    }
    if (eatPunct("(")) {
      std::unique_ptr<CExpr> E = parseExpr();
      if (!E || !expectPunct(")"))
        return nullptr;
      return E;
    }
    if (at(TokKind::Ident) && !isKeyword(cur().Text)) {
      std::string Name = cur().Text;
      advance();
      if (eatPunct("(")) {
        auto E = std::make_unique<CExpr>();
        E->K = CExpr::Kind::Call;
        E->Name = std::move(Name);
        E->Line = Line;
        E->Col = Col;
        if (!atPunct(")")) {
          do {
            std::unique_ptr<CExpr> Arg = parseAssign();
            if (!Arg)
              return nullptr;
            E->Args.push_back(std::move(Arg));
          } while (eatPunct(","));
        }
        if (!expectPunct(")"))
          return nullptr;
        return E;
      }
      if (eatPunct("[")) {
        auto E = std::make_unique<CExpr>();
        E->K = CExpr::Kind::Index;
        E->Name = std::move(Name);
        E->Line = Line;
        E->Col = Col;
        E->Lhs = parseExpr();
        if (!E->Lhs || !expectPunct("]"))
          return nullptr;
        return E;
      }
      auto E = std::make_unique<CExpr>();
      E->K = CExpr::Kind::Var;
      E->Name = std::move(Name);
      E->Line = Line;
      E->Col = Col;
      return E;
    }
    errHere("an expression");
    return nullptr;
  }
};

} // namespace

std::optional<CProgram> dra::parseCProgram(const std::vector<Token> &Toks,
                                           CcDiag *D) {
  return ParserImpl(Toks, D).run();
}

std::optional<CProgram> dra::parseCSource(const std::string &Src,
                                          CcDiag *D) {
  std::vector<Token> Toks;
  if (!tokenize(Src, Toks, D))
    return std::nullopt;
  return parseCProgram(Toks, D);
}
