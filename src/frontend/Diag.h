//===- frontend/Diag.h - Frontend diagnostics -------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic record every frontend stage (lexer, parser, lowering)
/// fills on failure. Positions are 1-based; column 0 means "whole line"
/// (used by end-of-file diagnostics).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FRONTEND_DIAG_H
#define DRA_FRONTEND_DIAG_H

#include <cstdint>
#include <string>

namespace dra {

/// One frontend diagnostic: a message anchored to a source position.
struct CcDiag {
  std::string Message;
  uint32_t Line = 0;
  uint32_t Col = 0;

  /// Renders "line L, col C: message" (position omitted when unknown).
  std::string render() const {
    if (Line == 0)
      return Message;
    std::string Out = "line " + std::to_string(Line);
    if (Col != 0)
      Out += ", col " + std::to_string(Col);
    return Out + ": " + Message;
  }
};

} // namespace dra

#endif // DRA_FRONTEND_DIAG_H
