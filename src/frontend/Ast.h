//===- frontend/Ast.h - Mini-C abstract syntax ------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree the mini-C parser produces and the lowering
/// pass consumes. Deliberately small: one integer type (64-bit, matching
/// the IR's arithmetic), scalar and array locals, and the statement forms
/// the grammar in DESIGN.md lists. Nodes carry their source position so
/// lowering diagnostics (undeclared identifier, recursive call, ...) can
/// point at real source.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FRONTEND_AST_H
#define DRA_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dra {

/// Binary operators, in C's spelling.
enum class CBinOp : uint8_t {
  Add, Sub, Mul, Div, Rem,          // + - * / %
  Shl, Shr,                         // << >>  (>> is a LOGICAL shift)
  Lt, Le, Gt, Ge, Eq, Ne,           // < <= > >= == !=
  BitAnd, BitXor, BitOr,            // & ^ |
  LogAnd, LogOr,                    // && ||  (short-circuit)
};

/// Unary operators.
enum class CUnOp : uint8_t { Neg, LogNot, BitNot }; // - ! ~

/// One expression node.
struct CExpr {
  enum class Kind : uint8_t {
    Num,    ///< integer literal (Num)
    Var,    ///< identifier (Name)
    Unary,  ///< Un applied to Lhs
    Binary, ///< Lhs Bin Rhs
    Assign, ///< Lhs = Rhs (Lhs is Var or Index)
    Index,  ///< Name[Lhs]
    Call,   ///< Name(Args...)
  };
  Kind K = Kind::Num;
  int64_t Num = 0;
  std::string Name;
  CBinOp Bin = CBinOp::Add;
  CUnOp Un = CUnOp::Neg;
  std::unique_ptr<CExpr> Lhs, Rhs;
  std::vector<std::unique_ptr<CExpr>> Args;
  uint32_t Line = 0, Col = 0;
};

/// One statement node.
struct CStmt {
  enum class Kind : uint8_t {
    Expr,     ///< Init;
    Decl,     ///< int Name; / int Name = Init; / int Name[ArrayLen];
    If,       ///< if (Cond) Then [else Else]
    While,    ///< while (Cond) Then
    For,      ///< for (ForInit; Cond; ForStep) Then
    Return,   ///< return [Init];
    Block,    ///< { Body... }
    Break,    ///< break;
    Continue, ///< continue;
    Empty,    ///< ;
  };
  Kind K = Kind::Empty;
  std::string Name;
  bool IsArray = false;
  uint32_t ArrayLen = 0;
  std::unique_ptr<CExpr> Init; ///< Expr value, Decl initializer, Return value.
  std::unique_ptr<CExpr> Cond;
  std::unique_ptr<CStmt> Then, Else;
  std::unique_ptr<CStmt> ForInit; ///< Decl, Expr or Empty.
  std::unique_ptr<CExpr> ForStep;
  std::vector<std::unique_ptr<CStmt>> Body;
  uint32_t Line = 0, Col = 0;
};

/// A function parameter. `int p` is a scalar (fresh copy per call);
/// `int p[]` binds by reference to a caller array (see DESIGN.md).
struct CParam {
  std::string Name;
  bool IsArray = false;
  uint32_t Line = 0, Col = 0;
};

/// One function definition. The body is always a Block.
struct CFunc {
  std::string Name;
  std::vector<CParam> Params;
  std::unique_ptr<CStmt> Body;
  uint32_t Line = 0, Col = 0;
};

/// A whole translation unit.
struct CProgram {
  std::vector<CFunc> Funcs;
};

} // namespace dra

#endif // DRA_FRONTEND_AST_H
