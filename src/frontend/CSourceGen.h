//===- frontend/CSourceGen.h - Random mini-C program generation -*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random generation of mini-C source for the `csrc` fuzz
/// axis: programs are generated as text, compiled through the frontend,
/// then run through the usual allocate/diff-encode/decode lockstep
/// oracle. By construction every generated program terminates: the only
/// loops are counted `for` loops whose induction variable is reserved
/// (never assigned in the body), and helper functions only call
/// lower-numbered helpers, so inline expansion is acyclic.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FRONTEND_CSOURCEGEN_H
#define DRA_FRONTEND_CSOURCEGEN_H

#include <cstdint>
#include <string>

namespace dra {

/// Shape knobs for one generated program. Every field is derived
/// deterministically from the seed by csrcProfileFor.
struct CSourceProfile {
  uint64_t Seed = 0;
  uint32_t NumHelpers = 1;      ///< Helper functions besides main.
  uint32_t NumArrays = 1;       ///< Arrays declared in main.
  uint32_t ArrayLen = 8;        ///< Words per array.
  uint32_t MaxStmtsPerBlock = 5;
  uint32_t MaxDepth = 3;        ///< Nesting bound for if/for/blocks.
  uint32_t MaxLoopTrip = 6;     ///< Upper bound on counted-loop trips.
};

/// Derives a generation profile from \p Seed. Pure function.
CSourceProfile csrcProfileFor(uint64_t Seed);

/// Generates one self-contained mini-C translation unit from \p P.
/// Pure function of the profile; the result always parses, lowers and
/// terminates under the interpreter.
std::string generateCSource(const CSourceProfile &P);

} // namespace dra

#endif // DRA_FRONTEND_CSOURCEGEN_H
