//===- frontend/Lower.h - Mini-C AST -> dra IR lowering ---------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed mini-C program to one executable dra::Function via
/// IRBuilder, starting at `main`. The IR has no call instruction, so
/// calls are lowered by inline expansion: each call site splices a fresh
/// copy of the callee's body (fresh virtual registers for its parameters,
/// locals and temporaries) into the caller's CFG, with `return` lowered
/// to "write the result register, jump to the call's join block".
/// Recursion is therefore a lowering error, reported with the full call
/// chain. Arrays live in the function's flat `mem=` space (bump-allocated
/// word offsets); array parameters bind by reference to the caller's
/// array. See DESIGN.md "Mini-C frontend" for the complete lowering
/// rules and the semantics the subset inherits from the IR.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FRONTEND_LOWER_H
#define DRA_FRONTEND_LOWER_H

#include "frontend/Ast.h"
#include "frontend/Diag.h"
#include "ir/Function.h"

#include <optional>
#include <string>

namespace dra {

/// Growth bounds for inline expansion. A call tree that multiplies the
/// program past these caps is a lowering error, not an OOM.
struct LowerOptions {
  size_t MaxInsts = 1u << 20;
  size_t MaxBlocks = 1u << 16;
  uint32_t MaxMemWords = 1u << 20;
};

/// Lowers \p P into a single function named \p Name (the program's
/// `main`, with every call inlined). On failure returns std::nullopt with
/// a position-carrying diagnostic in \p D. The result always passes
/// verifyFunction and interprets from block 0.
std::optional<Function> lowerCProgram(const CProgram &P,
                                      const std::string &Name,
                                      CcDiag *D = nullptr,
                                      const LowerOptions &O = {});

} // namespace dra

#endif // DRA_FRONTEND_LOWER_H
