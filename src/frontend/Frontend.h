//===- frontend/Frontend.h - Mini-C compile entry points --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call mini-C compilation (tokenize + parse + lower) plus the
/// `// expect: N` corpus annotation used by the executable test corpus
/// under tests/cc/. Each corpus program declares the value its `main`
/// must return; dra-cc's corpus runner asserts
/// program x scheme -> annotated value for all five schemes.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FRONTEND_FRONTEND_H
#define DRA_FRONTEND_FRONTEND_H

#include "frontend/Diag.h"
#include "frontend/Lower.h"
#include "ir/Function.h"

#include <optional>
#include <string>

namespace dra {

/// Compiles mini-C source to one executable Function named \p Name.
/// On failure returns std::nullopt with the diagnostic in \p D.
std::optional<Function> compileCSource(const std::string &Name,
                                       const std::string &Source,
                                       CcDiag *D = nullptr,
                                       const LowerOptions &O = {});

/// Scans \p Source for the first `// expect: N` line (N is a decimal
/// int64, optionally negative) and returns N. Used to annotate corpus
/// programs with the exit value their main must produce.
std::optional<int64_t> expectedReturnAnnotation(const std::string &Source);

} // namespace dra

#endif // DRA_FRONTEND_FRONTEND_H
