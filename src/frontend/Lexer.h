//===- frontend/Lexer.h - Mini-C tokenizer ----------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the mini-C frontend (see DESIGN.md "Mini-C frontend").
/// Produces a flat token list with 1-based line/column positions so the
/// parser can anchor every diagnostic. Keywords are delivered as Ident
/// tokens; the parser decides which identifiers are reserved.
///
/// Recognized lexemes: identifiers `[A-Za-z_][A-Za-z0-9_]*`, decimal
/// integer literals (overflow past int64 is a lex error, not a silent
/// wrap), the multi-character operators `<= >= == != && || << >>`, the
/// single-character punctuation `+ - * / % ( ) { } [ ] ; , = < > ! & | ^ ~`,
/// and `//` line and `/* */` block comments (an unterminated block comment
/// is a lex error).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FRONTEND_LEXER_H
#define DRA_FRONTEND_LEXER_H

#include "frontend/Diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dra {

/// Token kinds. Keywords arrive as Ident; the parser matches their text.
enum class TokKind : uint8_t { Ident, Num, Punct, Eof };

/// One token. \p Text is the exact source spelling (for Punct, the
/// operator itself, so the parser compares against string literals).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t Num = 0; ///< Value for TokKind::Num.
  uint32_t Line = 0;
  uint32_t Col = 0;
};

/// Tokenizes \p Src. On success fills \p Out (always terminated by one
/// Eof token carrying the end position) and returns true; on failure
/// returns false with the offending position in \p D (if non-null).
bool tokenize(const std::string &Src, std::vector<Token> &Out,
              CcDiag *D = nullptr);

} // namespace dra

#endif // DRA_FRONTEND_LEXER_H
