//===- sim/LowEndSim.h - In-order 5-stage pipeline model --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-end machine model of the paper's Section 10.1 evaluation
/// (Table 1 analogue): a single-issue in-order 5-stage pipeline in the
/// ARM/THUMB mold with 16-bit instructions, small split I/D caches and
/// simple per-opcode latencies. set_last_reg occupies a fetch/decode slot
/// (one cycle and I-cache traffic) but never reaches execute — "as cheap as
/// a move instruction", exactly the paper's cost assumption.
///
/// The model is driven by the interpreter's dynamic trace, so the measured
/// cycles reflect the real dynamic behaviour of the allocated and encoded
/// code: fewer spills mean fewer executed loads/stores and less D-cache
/// traffic; larger code means more I-cache traffic.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SIM_LOWENDSIM_H
#define DRA_SIM_LOWENDSIM_H

#include "ir/Function.h"

#include <cstdint>

namespace dra {

/// Machine parameters (the repo's Table 1).
struct LowEndMachine {
  unsigned BytesPerInst = 2; // THUMB-like 16-bit encoding.
  uint32_t ICacheBytes = 2048;
  uint32_t ICacheLineBytes = 32;
  uint32_t ICacheWays = 2;
  unsigned ICacheMissPenalty = 18;
  uint32_t DCacheBytes = 2048;
  uint32_t DCacheLineBytes = 32;
  uint32_t DCacheWays = 2;
  unsigned DCacheMissPenalty = 18;
  unsigned LoadExtraCycles = 1;   // Load-use slot.
  unsigned StoreExtraCycles = 0;
  unsigned MulExtraCycles = 2;
  unsigned DivExtraCycles = 8;
  unsigned TakenBranchPenalty = 2;
  /// How much a set_last_reg decode slot costs. The paper treats slr "as
  /// cheap as a move" but also notes it is killed at decode; the front-end
  /// model decides how much of that cost is hidden:
  ///  * Full       — every slr costs one decode cycle (most conservative).
  ///  * HalfAligned — the 32-bit fetch delivers two 16-bit slots per
  ///    cycle; an slr in the first (4-byte aligned) slot is disposed of
  ///    together with its pair for free, an slr in the second slot costs a
  ///    cycle. Deterministic by code layout, ~half the slrs are hidden.
  ///    This is the default.
  ///  * Absorbed   — a scanning decoder kills any isolated slr for free;
  ///    only back-to-back slrs stall.
  enum class SlrCost : uint8_t { Full, HalfAligned, Absorbed };
  SlrCost SlrCostPolicy = SlrCost::HalfAligned;
  uint64_t StepLimit = 30'000'000;
};

/// Cycle/traffic breakdown of one simulated run.
struct SimResult {
  uint64_t Cycles = 0;
  /// Executed instructions (excluding set_last_reg).
  uint64_t DynInsts = 0;
  /// set_last_reg fetch/decode slots consumed.
  uint64_t SlrSlots = 0;
  uint64_t ICacheMisses = 0;
  uint64_t DCacheMisses = 0;
  /// Dynamic spill loads + stores executed.
  uint64_t SpillAccesses = 0;
  /// Return value / memory fingerprint of the run (for equivalence checks).
  uint64_t Fingerprint = 0;
  bool HitStepLimit = false;
};

/// Simulates executing \p F on \p M. \p F must be fully allocated
/// (register operands are physical numbers); it may contain set_last_reg
/// instructions.
SimResult simulate(const Function &F, const LowEndMachine &M = {});

} // namespace dra

#endif // DRA_SIM_LOWENDSIM_H
