//===- sim/LowEndSim.cpp - In-order 5-stage pipeline model ----------------===//

#include "sim/LowEndSim.h"

#include "interp/Interpreter.h"
#include "sim/Cache.h"

#include <vector>

using namespace dra;

SimResult dra::simulate(const Function &F, const LowEndMachine &M) {
  // Static layout: blocks in order, BytesPerInst bytes per instruction.
  std::vector<uint64_t> BlockBase(F.Blocks.size(), 0);
  uint64_t Pc = 0;
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    BlockBase[B] = Pc;
    Pc += F.Blocks[B].Insts.size() * M.BytesPerInst;
  }

  // Data layout: the data array and the spill area live in disjoint
  // regions; both are cached by the D-cache. Words are 4 bytes on this
  // 16-bit-instruction machine class.
  constexpr uint64_t DataBase = 0x10000;
  constexpr uint64_t SpillBase = 0x20000;
  constexpr uint64_t WordBytes = 4;

  Cache ICache(M.ICacheBytes, M.ICacheLineBytes, M.ICacheWays);
  Cache DCache(M.DCacheBytes, M.DCacheLineBytes, M.DCacheWays);

  SimResult R;
  bool PrevWasSlr = false;

  TraceCallback OnEvent = [&](const TraceEvent &Ev) {
    uint64_t Addr =
        BlockBase[Ev.Block] + uint64_t(Ev.InstIdx) * M.BytesPerInst;
    if (!ICache.access(Addr))
      R.Cycles += M.ICacheMissPenalty;

    const Instruction &I = *Ev.Inst;
    if (I.Op == Opcode::SetLastReg) {
      // Killed at decode; the front-end model decides the visible cost.
      switch (M.SlrCostPolicy) {
      case LowEndMachine::SlrCost::Full:
        R.Cycles += 1;
        break;
      case LowEndMachine::SlrCost::HalfAligned:
        if (Addr % 4 != 0)
          R.Cycles += 1;
        break;
      case LowEndMachine::SlrCost::Absorbed:
        if (PrevWasSlr)
          R.Cycles += 1;
        break;
      }
      PrevWasSlr = true;
      ++R.SlrSlots;
      return;
    }
    PrevWasSlr = false;

    R.Cycles += 1;
    ++R.DynInsts;
    switch (I.Op) {
    case Opcode::Mul:
    case Opcode::MulI:
      R.Cycles += M.MulExtraCycles;
      break;
    case Opcode::DivS:
    case Opcode::Rem:
      R.Cycles += M.DivExtraCycles;
      break;
    case Opcode::Load:
    case Opcode::SpillLd: {
      R.Cycles += M.LoadExtraCycles;
      uint64_t Base = I.Op == Opcode::SpillLd ? SpillBase : DataBase;
      if (!DCache.access(Base + Ev.MemAddr * WordBytes))
        R.Cycles += M.DCacheMissPenalty;
      R.SpillAccesses += I.Op == Opcode::SpillLd;
      break;
    }
    case Opcode::Store:
    case Opcode::SpillSt: {
      R.Cycles += M.StoreExtraCycles;
      uint64_t Base = I.Op == Opcode::SpillSt ? SpillBase : DataBase;
      if (!DCache.access(Base + Ev.MemAddr * WordBytes))
        R.Cycles += M.DCacheMissPenalty;
      R.SpillAccesses += I.Op == Opcode::SpillSt;
      break;
    }
    case Opcode::Br:
    case Opcode::Jmp:
      if (Ev.BranchTaken)
        R.Cycles += M.TakenBranchPenalty;
      break;
    default:
      break;
    }
  };

  ExecResult Exec = interpret(F, M.StepLimit, OnEvent);
  R.ICacheMisses = ICache.misses();
  R.DCacheMisses = DCache.misses();
  R.Fingerprint = fingerprint(Exec);
  R.HitStepLimit = Exec.HitStepLimit;
  return R;
}
