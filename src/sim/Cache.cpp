//===- sim/Cache.cpp - Set-associative cache model -------------------------===//

#include "sim/Cache.h"

using namespace dra;

[[maybe_unused]] static bool isPow2(uint32_t X) { return X != 0 && (X & (X - 1)) == 0; }

Cache::Cache(uint32_t SizeBytes, uint32_t LineBytes, uint32_t Ways)
    : LineBytes(LineBytes), Ways(Ways) {
  assert(isPow2(SizeBytes) && isPow2(LineBytes) && isPow2(Ways) &&
         "cache geometry must be powers of two");
  assert(SizeBytes >= LineBytes * Ways && "cache smaller than one set");
  NumSets = SizeBytes / (LineBytes * Ways);
  Tags.assign(static_cast<size_t>(NumSets) * Ways, ~uint64_t(0));
}

bool Cache::access(uint64_t Addr) {
  uint64_t Line = Addr / LineBytes;
  uint32_t Set = static_cast<uint32_t>(Line % NumSets);
  uint64_t Tag = Line / NumSets;
  uint64_t *SetTags = &Tags[static_cast<size_t>(Set) * Ways];

  for (uint32_t Way = 0; Way != Ways; ++Way) {
    if (SetTags[Way] != Tag)
      continue;
    // Hit: move to MRU position.
    for (uint32_t Shift = Way; Shift > 0; --Shift)
      SetTags[Shift] = SetTags[Shift - 1];
    SetTags[0] = Tag;
    ++Hits;
    return true;
  }
  // Miss: evict LRU (last way).
  for (uint32_t Shift = Ways - 1; Shift > 0; --Shift)
    SetTags[Shift] = SetTags[Shift - 1];
  SetTags[0] = Tag;
  ++Misses;
  return false;
}
