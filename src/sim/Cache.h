//===- sim/Cache.h - Set-associative cache model ----------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic set-associative LRU cache model used for both the I-cache and
/// the D-cache of the low-end pipeline simulator. Only hit/miss behaviour
/// is modeled (no contents), which is all the cycle accounting needs.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SIM_CACHE_H
#define DRA_SIM_CACHE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dra {

/// Geometry + LRU state of one cache.
class Cache {
public:
  /// \p SizeBytes total capacity, \p LineBytes per line, \p Ways
  /// associativity. All must be powers of two with Size >= Line * Ways.
  Cache(uint32_t SizeBytes, uint32_t LineBytes, uint32_t Ways);

  /// Accesses \p Addr; returns true on hit and updates LRU/fill state.
  bool access(uint64_t Addr);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

  void resetStats() { Hits = Misses = 0; }

private:
  uint32_t LineBytes;
  uint32_t NumSets;
  uint32_t Ways;
  /// Tags[set * Ways + way]; ~0 = invalid. LRU order: lower index = more
  /// recently used (small associativity, so vector shuffling is fine).
  std::vector<uint64_t> Tags;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace dra

#endif // DRA_SIM_CACHE_H
