//===- swp/Ddg.h - Loop data-dependence graphs ------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-dependence graphs for innermost loops, the input of the modulo
/// scheduler (Section 10.2 pipeline). Nodes are operations with a
/// functional-unit kind and latency; edges carry (latency, distance) where
/// distance is the number of loop iterations the dependence spans.
/// Each operation defines at most one value, consumed by its data
/// successors — the representation the VLIW register-requirement analysis
/// works on.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SWP_DDG_H
#define DRA_SWP_DDG_H

#include <cstdint>
#include <string>
#include <vector>

namespace dra {

/// Functional-unit classes of the VLIW model.
enum class FuKind : uint8_t { Alu, Mem, Mul };

/// One loop operation.
struct DdgOp {
  FuKind Kind = FuKind::Alu;
  unsigned Latency = 1;
  /// True if the op defines a register value (stores do not).
  bool Defines = true;
};

/// One dependence edge: Dst depends on Src with the given latency, across
/// Distance iterations (0 = same iteration).
struct DdgEdge {
  uint32_t Src = 0;
  uint32_t Dst = 0;
  unsigned Latency = 1;
  unsigned Distance = 0;
  /// True if this is a data (register flow) edge: Dst reads Src's value.
  bool IsData = true;
};

/// An innermost loop as a DDG.
struct LoopDdg {
  std::string Name;
  std::vector<DdgOp> Ops;
  std::vector<DdgEdge> Edges;
  /// Iteration count used for cycle accounting.
  uint64_t TripCount = 1000;

  size_t countKind(FuKind K) const {
    size_t N = 0;
    for (const DdgOp &Op : Ops)
      N += Op.Kind == K;
    return N;
  }
};

/// The VLIW machine of the high-performance evaluation: 4 issue slots, 2
/// memory ports (Section 10.2). Multiplies share the ALU slots but are
/// limited by dedicated units.
struct VliwMachine {
  unsigned IssueSlots = 4;
  unsigned MemPorts = 2;
  unsigned MulUnits = 2;
};

/// Resource-constrained minimum initiation interval.
unsigned resMii(const LoopDdg &L, const VliwMachine &M);

/// Recurrence-constrained minimum II: the smallest II such that no
/// dependence cycle has positive slack deficit (computed by positive-cycle
/// detection on edge weight latency - II * distance). Returns 1 when the
/// graph is acyclic.
unsigned recMii(const LoopDdg &L);

/// max(resMii, recMii).
unsigned minII(const LoopDdg &L, const VliwMachine &M);

} // namespace dra

#endif // DRA_SWP_DDG_H
