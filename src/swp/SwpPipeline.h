//===- swp/SwpPipeline.h - Software-pipelining driver -----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-performance-processor pipeline of Section 10.2: modulo
/// scheduling (src/swp/ModuloScheduler.h), spilling when the kernel's
/// register requirement exceeds the architected registers (Zalamea-style:
/// the longest-lived value is stored after its definition and reloaded
/// before distant uses, the loop is rescheduled), cyclic kernel register
/// allocation under modulo variable expansion, and — when differential
/// encoding is enabled — differential remapping of the kernel's register
/// numbers with all remaining repairs priced as set_last_reg words.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SWP_SWPPIPELINE_H
#define DRA_SWP_SWPPIPELINE_H

#include "core/EncodingConfig.h"
#include "swp/ModuloScheduler.h"

namespace dra {

/// Outcome of pipelining one loop.
struct SwpResult {
  bool Ok = true;
  unsigned MII = 0;
  unsigned II = 0;
  unsigned StageCount = 1;
  unsigned MaxLive = 0;
  unsigned Mve = 1;
  /// Registers the kernel allocation actually used.
  unsigned RegsUsed = 0;
  /// Memory operations added by spilling.
  size_t SpillOps = 0;
  /// Values spilled.
  size_t SpilledValues = 0;
  /// Kernel operations after spilling (one VLIW slot each).
  size_t KernelOps = 0;
  /// Steady-state + prologue cycles for TripCount iterations.
  uint64_t Cycles = 0;
  /// Static code size in instruction slots: MVE-unrolled kernel plus
  /// prologue/epilogue stages plus set_last_reg words.
  size_t CodeInsts = 0;
  /// set_last_reg words: one per remaining adjacency violation in the
  /// allocated kernel plus one loop-entry repair (0 when differential
  /// encoding is off).
  size_t SetLastRegs = 0;
  /// Candidate IIs the iterative modulo scheduler tried, summed over all
  /// spill rounds (each round reschedules the rewritten DDG).
  unsigned IIAttempts = 0;
  /// Schedule/allocate rounds run (1 + spill rounds that rescheduled).
  unsigned SchedRounds = 0;
};

/// Pipelines \p L (by value; spilling rewrites the DDG) for a machine with
/// \p ArchRegs architected registers. When \p Enc is non-null differential
/// encoding exposes Enc->RegN registers (ArchRegs is then ignored for the
/// requirement check but Enc->DiffN-bit semantics price the repairs);
/// when null the loop is limited to ArchRegs with direct encoding.
SwpResult pipelineLoop(LoopDdg L, const VliwMachine &M, unsigned ArchRegs,
                       const EncodingConfig *Enc = nullptr,
                       unsigned RemapStarts = 12);

/// Rewrites \p L so that value \p Op is spilled: a store is inserted after
/// the definition and one load per consuming edge replaces the register
/// flow. Returns the number of memory operations added.
size_t spillValue(LoopDdg &L, uint32_t Op);

} // namespace dra

#endif // DRA_SWP_SWPPIPELINE_H
