//===- swp/ModuloScheduler.h - Iterative modulo scheduling ------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rau's iterative modulo scheduling (IMS): height-priority list scheduling
/// onto a modulo reservation table with bounded-budget eviction. Paired
/// with the register-requirement analysis (MaxLive under the flattened
/// steady state) and the modulo-variable-expansion factor used for code
/// growth accounting.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SWP_MODULOSCHEDULER_H
#define DRA_SWP_MODULOSCHEDULER_H

#include "swp/Ddg.h"

#include <optional>
#include <vector>

namespace dra {

/// A modulo schedule: an absolute issue time per operation, valid modulo
/// II against the machine resources.
struct ModuloSchedule {
  unsigned II = 0;
  std::vector<unsigned> TimeOf;
  /// Candidate IIs scheduleLoop tried before this one succeeded
  /// (including it); the paper's "II attempts" search-effort metric.
  /// 1 means minII scheduled immediately; 0 for a schedule not produced
  /// by scheduleLoop.
  unsigned Attempts = 0;
  /// Number of kernel stages: ceil((max time + 1) / II).
  unsigned stageCount() const;
};

/// Per-value lifetime information in the steady state.
struct RegRequirement {
  /// Maximum simultaneously-live values over the II phases.
  unsigned MaxLive = 0;
  /// Modulo-variable-expansion unroll factor: max over values of
  /// ceil(lifetime / II), at least 1.
  unsigned Mve = 1;
  /// Per-op lifetime span in cycles (0 for ops defining no value or with
  /// no consumers... stores report 0).
  std::vector<unsigned> SpanOf;
};

/// Attempts to schedule \p L at exactly \p II. \p BudgetRatio bounds
/// scheduling steps (ops * ratio) before giving up.
std::optional<ModuloSchedule> scheduleAtII(const LoopDdg &L,
                                           const VliwMachine &M, unsigned II,
                                           unsigned BudgetRatio = 16);

/// Schedules \p L at the smallest feasible II >= minII(L, M), trying
/// successive IIs up to \p MaxII (0 = automatic bound). Never fails for
/// consistent DDGs (a large-enough II always works).
ModuloSchedule scheduleLoop(const LoopDdg &L, const VliwMachine &M,
                            unsigned MaxII = 0);

/// Computes MaxLive / MVE for \p S.
RegRequirement computeRegRequirement(const LoopDdg &L,
                                     const ModuloSchedule &S);

} // namespace dra

#endif // DRA_SWP_MODULOSCHEDULER_H
