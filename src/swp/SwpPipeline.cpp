//===- swp/SwpPipeline.cpp - Software-pipelining driver -------------------===//

#include "swp/SwpPipeline.h"

#include "core/AdjacencyGraph.h"
#include "core/Remap.h"

#include <algorithm>
#include <cassert>

using namespace dra;

size_t dra::spillValue(LoopDdg &L, uint32_t Op) {
  assert(Op < L.Ops.size() && L.Ops[Op].Defines && "cannot spill this op");
  // Store node.
  uint32_t StoreIdx = static_cast<uint32_t>(L.Ops.size());
  DdgOp Store;
  Store.Kind = FuKind::Mem;
  Store.Latency = 1;
  Store.Defines = false;
  L.Ops.push_back(Store);
  L.Edges.push_back({Op, StoreIdx, L.Ops[Op].Latency, 0, /*IsData=*/true});

  // One load per consuming data edge.
  size_t Added = 1;
  std::vector<DdgEdge> NewEdges;
  for (DdgEdge &E : L.Edges) {
    if (!E.IsData || E.Src != Op || E.Dst == StoreIdx)
      continue;
    uint32_t LoadIdx = static_cast<uint32_t>(L.Ops.size());
    DdgOp Load;
    Load.Kind = FuKind::Mem;
    Load.Latency = 2;
    Load.Defines = true;
    L.Ops.push_back(Load);
    ++Added;
    // Memory dependence store -> load carries the iteration distance.
    NewEdges.push_back({StoreIdx, LoadIdx, 1, E.Distance, /*IsData=*/false});
    // The consumer now reads the load's value in the same iteration.
    NewEdges.push_back({LoadIdx, E.Dst, Load.Latency, 0, /*IsData=*/true});
    // Retarget the old edge into a non-data ordering edge that keeps the
    // consumer after the original definition is irrelevant now; drop it by
    // marking it as the new load edge instead: easiest is to rewrite it to
    // the store->load edge later, so mark for deletion via Latency = 0 and
    // IsData = false on a self loop which we filter below.
    E.Src = E.Dst = 0;
    E.Latency = 0;
    E.Distance = 0;
    E.IsData = false;
  }
  // Remove the neutralized self edges.
  L.Edges.erase(std::remove_if(L.Edges.begin(), L.Edges.end(),
                               [](const DdgEdge &E) {
                                 return E.Src == E.Dst && E.Latency == 0 &&
                                        !E.IsData;
                               }),
                L.Edges.end());
  L.Edges.insert(L.Edges.end(), NewEdges.begin(), NewEdges.end());
  return Added;
}

namespace {

/// Cyclic register allocation of the MVE-unrolled kernel.
struct KernelAlloc {
  unsigned RegsUsed = 0;
  unsigned Mve = 1;
  /// RegOf[Op][Copy] — register of op Op's value in unroll copy Copy
  /// (NoReg for non-defining ops).
  std::vector<std::vector<RegId>> RegOf;
};

/// Greedy circular-arc coloring of value instances over the unrolled
/// steady-state window of length Mve * II.
KernelAlloc allocateKernel(const LoopDdg &L, const ModuloSchedule &S,
                           const RegRequirement &RR) {
  KernelAlloc A;
  A.Mve = RR.Mve;
  unsigned Window = std::max(1u, A.Mve * S.II);
  size_t N = L.Ops.size();
  A.RegOf.assign(N, std::vector<RegId>(A.Mve, NoReg));

  struct Arc {
    uint32_t Op;
    unsigned Copy;
    unsigned Start; // In [0, Window).
    unsigned Span;  // <= Window by MVE construction.
  };
  std::vector<Arc> Arcs;
  for (uint32_t Op = 0; Op != N; ++Op) {
    if (!L.Ops[Op].Defines)
      continue;
    unsigned Span = std::max(1u, RR.SpanOf[Op]);
    assert(Span <= Window && "span exceeds MVE window");
    for (unsigned Copy = 0; Copy != A.Mve; ++Copy)
      Arcs.push_back({Op, Copy, (S.TimeOf[Op] + Copy * S.II) % Window, Span});
  }
  std::sort(Arcs.begin(), Arcs.end(), [](const Arc &X, const Arc &Y) {
    if (X.Start != Y.Start)
      return X.Start < Y.Start;
    if (X.Op != Y.Op)
      return X.Op < Y.Op;
    return X.Copy < Y.Copy;
  });

  auto Overlaps = [&](const Arc &X, const Arc &Y) {
    // Circular interval overlap over [0, Window).
    unsigned DeltaXY = (Y.Start + Window - X.Start) % Window;
    unsigned DeltaYX = (X.Start + Window - Y.Start) % Window;
    return DeltaXY < X.Span || DeltaYX < Y.Span;
  };

  std::vector<std::vector<Arc>> PerReg;
  for (const Arc &Candidate : Arcs) {
    bool Placed = false;
    for (unsigned Reg = 0; Reg != PerReg.size() && !Placed; ++Reg) {
      bool Conflict = false;
      for (const Arc &Existing : PerReg[Reg])
        if (Overlaps(Candidate, Existing)) {
          Conflict = true;
          break;
        }
      if (!Conflict) {
        PerReg[Reg].push_back(Candidate);
        A.RegOf[Candidate.Op][Candidate.Copy] = Reg;
        Placed = true;
      }
    }
    if (!Placed) {
      PerReg.emplace_back();
      PerReg.back().push_back(Candidate);
      A.RegOf[Candidate.Op][Candidate.Copy] =
          static_cast<RegId>(PerReg.size() - 1);
    }
  }
  A.RegsUsed = static_cast<unsigned>(PerReg.size());
  return A;
}

/// The kernel's register access sequence across the unrolled steady state,
/// in issue-time order (srcs then dst per op).
std::vector<RegId> kernelAccessSequence(const LoopDdg &L,
                                        const ModuloSchedule &S,
                                        const KernelAlloc &A) {
  struct Slot {
    unsigned Time;
    uint32_t Op;
    unsigned Copy;
  };
  std::vector<Slot> Slots;
  for (uint32_t Op = 0; Op != L.Ops.size(); ++Op)
    for (unsigned Copy = 0; Copy != A.Mve; ++Copy)
      Slots.push_back({S.TimeOf[Op] + Copy * S.II, Op, Copy});
  std::sort(Slots.begin(), Slots.end(), [](const Slot &X, const Slot &Y) {
    if (X.Time != Y.Time)
      return X.Time < Y.Time;
    if (X.Op != Y.Op)
      return X.Op < Y.Op;
    return X.Copy < Y.Copy;
  });

  std::vector<RegId> Seq;
  for (const Slot &Sl : Slots) {
    // Sources: incoming data edges; the producing copy is offset by the
    // dependence distance.
    for (const DdgEdge &E : L.Edges) {
      if (!E.IsData || E.Dst != Sl.Op)
        continue;
      unsigned SrcCopy =
          (Sl.Copy + A.Mve - (E.Distance % A.Mve)) % A.Mve;
      RegId R = A.RegOf[E.Src][SrcCopy];
      if (R != NoReg)
        Seq.push_back(R);
    }
    RegId Def = L.Ops[Sl.Op].Defines ? A.RegOf[Sl.Op][Sl.Copy] : NoReg;
    if (Def != NoReg)
      Seq.push_back(Def);
  }
  return Seq;
}

} // namespace

SwpResult dra::pipelineLoop(LoopDdg L, const VliwMachine &M,
                            unsigned ArchRegs, const EncodingConfig *Enc,
                            unsigned RemapStarts) {
  SwpResult R;
  unsigned RegLimit = Enc ? Enc->RegN : ArchRegs;

  ModuloSchedule S;
  RegRequirement RR;
  KernelAlloc A;
  std::vector<uint8_t> Spilled(L.Ops.size(), 0);

  size_t MaxSpillRounds = L.Ops.size() + 8;
  for (size_t Round = 0;; ++Round) {
    R.MII = minII(L, M);
    S = scheduleLoop(L, M);
    R.IIAttempts += S.Attempts;
    ++R.SchedRounds;
    RR = computeRegRequirement(L, S);
    A = allocateKernel(L, S, RR);
    if (A.RegsUsed <= RegLimit || Round >= MaxSpillRounds)
      break;

    // Spill the longest-lived spillable value (Zalamea-style heuristic):
    // exclude memory ops (loads produced by earlier spills) and values
    // already spilled.
    uint32_t Victim = ~0u;
    unsigned VictimSpan = 0;
    for (uint32_t Op = 0; Op != L.Ops.size(); ++Op) {
      if (!L.Ops[Op].Defines || L.Ops[Op].Kind == FuKind::Mem)
        continue;
      if (Op < Spilled.size() && Spilled[Op])
        continue;
      bool HasConsumer = false;
      for (const DdgEdge &E : L.Edges)
        HasConsumer |= E.IsData && E.Src == Op;
      if (!HasConsumer)
        continue;
      if (RR.SpanOf[Op] > VictimSpan) {
        VictimSpan = RR.SpanOf[Op];
        Victim = Op;
      }
    }
    if (Victim == ~0u)
      break; // Nothing left to spill; accept the over-requirement.
    R.SpillOps += spillValue(L, Victim);
    ++R.SpilledValues;
    Spilled.resize(L.Ops.size(), 0);
    Spilled[Victim] = 1;
  }

  R.Ok = A.RegsUsed <= RegLimit;
  R.II = S.II;
  R.StageCount = S.stageCount();
  R.MaxLive = RR.MaxLive;
  R.Mve = RR.Mve;
  R.RegsUsed = A.RegsUsed;
  R.KernelOps = L.Ops.size();

  // Steady state plus pipeline fill.
  R.Cycles = static_cast<uint64_t>(S.II) * L.TripCount +
             static_cast<uint64_t>(R.StageCount - 1) * S.II;

  // Differential encoding of the kernel (Section 8.1): remap the kernel's
  // register numbers, then price every remaining adjacency violation (plus
  // one loop-entry repair) as a set_last_reg word. Skipped when spilling
  // could not bring the requirement under RegN (R.Ok is false then and the
  // kernel uses register ids the encoding cannot address).
  if (Enc && A.RegsUsed <= Enc->RegN) {
    std::vector<RegId> Seq = kernelAccessSequence(L, S, A);
    AdjacencyGraph G(Enc->RegN);
    for (size_t I = 1; I < Seq.size(); ++I)
      G.addWeight(Seq[I - 1], Seq[I], 1.0);
    if (Seq.size() >= 2)
      G.addWeight(Seq.back(), Seq.front(), 1.0); // Back-edge wraparound.
    RemapOptions RO;
    RO.NumStarts = RemapStarts; // Kernel graphs are small; keep remap fast.
    RemapResult RemapRes = findRemap(G, *Enc, RO);
    R.SetLastRegs =
        static_cast<size_t>(RemapRes.CostAfter + 0.5) + (Seq.empty() ? 0 : 1);
  }

  // Static code: MVE-unrolled kernel + prologue/epilogue stages + repairs.
  R.CodeInsts = R.KernelOps * R.Mve +
                2 * static_cast<size_t>(R.StageCount - 1) * R.KernelOps +
                R.SetLastRegs;
  return R;
}
