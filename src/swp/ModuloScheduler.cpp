//===- swp/ModuloScheduler.cpp - Iterative modulo scheduling --------------===//

#include "swp/ModuloScheduler.h"

#include <algorithm>
#include <cassert>

using namespace dra;

unsigned ModuloSchedule::stageCount() const {
  unsigned MaxTime = 0;
  for (unsigned T : TimeOf)
    MaxTime = std::max(MaxTime, T);
  return II == 0 ? 1 : (MaxTime / II) + 1;
}

namespace {

/// Modulo reservation table for one candidate II.
class Mrt {
public:
  Mrt(const VliwMachine &M, unsigned II)
      : M(M), II(II), Slots(II, 0), Mem(II, 0), Mul(II, 0) {}

  bool fits(FuKind Kind, unsigned Time) const {
    unsigned Row = Time % II;
    if (Slots[Row] >= M.IssueSlots)
      return false;
    if (Kind == FuKind::Mem && Mem[Row] >= M.MemPorts)
      return false;
    if (Kind == FuKind::Mul && Mul[Row] >= M.MulUnits)
      return false;
    return true;
  }

  void add(FuKind Kind, unsigned Time) {
    unsigned Row = Time % II;
    ++Slots[Row];
    if (Kind == FuKind::Mem)
      ++Mem[Row];
    if (Kind == FuKind::Mul)
      ++Mul[Row];
  }

  void remove(FuKind Kind, unsigned Time) {
    unsigned Row = Time % II;
    assert(Slots[Row] > 0 && "removing from empty row");
    --Slots[Row];
    if (Kind == FuKind::Mem)
      --Mem[Row];
    if (Kind == FuKind::Mul)
      --Mul[Row];
  }

private:
  const VliwMachine &M;
  unsigned II;
  std::vector<unsigned> Slots, Mem, Mul;
};

/// Height-based priority (longest latency path to any sink, II-adjusted
/// over back edges ignored for simplicity — classic HeightR with distance
/// discount).
std::vector<double> computeHeights(const LoopDdg &L, unsigned II) {
  size_t N = L.Ops.size();
  std::vector<double> Height(N, 0.0);
  // Relax enough rounds; heights over cyclic graphs are bounded because a
  // feasible II makes every cycle's weight non-positive.
  for (size_t Round = 0; Round <= N + 1; ++Round) {
    bool Changed = false;
    for (const DdgEdge &E : L.Edges) {
      double W = static_cast<double>(E.Latency) -
                 static_cast<double>(II) * static_cast<double>(E.Distance);
      if (Height[E.Src] < Height[E.Dst] + W - 1e-9) {
        Height[E.Src] = Height[E.Dst] + W;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return Height;
}

} // namespace

std::optional<ModuloSchedule> dra::scheduleAtII(const LoopDdg &L,
                                                const VliwMachine &M,
                                                unsigned II,
                                                unsigned BudgetRatio) {
  size_t N = L.Ops.size();
  if (N == 0)
    return ModuloSchedule{II, {}};

  std::vector<double> Height = computeHeights(L, II);

  constexpr unsigned Unscheduled = ~0u;
  ModuloSchedule S;
  S.II = II;
  S.TimeOf.assign(N, Unscheduled);
  Mrt Table(M, II);

  // In/out edge indices per op.
  std::vector<std::vector<uint32_t>> InEdges(N), OutEdges(N);
  for (uint32_t E = 0; E != L.Edges.size(); ++E) {
    InEdges[L.Edges[E].Dst].push_back(E);
    OutEdges[L.Edges[E].Src].push_back(E);
  }

  // Worklist of unscheduled ops, highest priority first.
  auto Pick = [&]() -> uint32_t {
    uint32_t Best = ~0u;
    for (uint32_t Op = 0; Op != N; ++Op) {
      if (S.TimeOf[Op] != Unscheduled)
        continue;
      if (Best == ~0u || Height[Op] > Height[Best] + 1e-9 ||
          (std::abs(Height[Op] - Height[Best]) <= 1e-9 && Op < Best))
        Best = Op;
    }
    return Best;
  };

  uint64_t Budget =
      static_cast<uint64_t>(N) * std::max(4u, BudgetRatio);
  std::vector<unsigned> LastForced(N, 0);

  while (true) {
    uint32_t Op = Pick();
    if (Op == ~0u)
      break; // All scheduled.
    if (Budget-- == 0)
      return std::nullopt;

    // Earliest start from scheduled predecessors.
    long EStart = 0;
    for (uint32_t EIdx : InEdges[Op]) {
      const DdgEdge &E = L.Edges[EIdx];
      if (S.TimeOf[E.Src] == Unscheduled)
        continue;
      long Bound = static_cast<long>(S.TimeOf[E.Src]) +
                   static_cast<long>(E.Latency) -
                   static_cast<long>(II) * static_cast<long>(E.Distance);
      EStart = std::max(EStart, Bound);
    }
    EStart = std::max(EStart, 0l);

    // Try the II consecutive slots from EStart.
    unsigned Chosen = ~0u;
    for (unsigned Offset = 0; Offset != II; ++Offset) {
      unsigned T = static_cast<unsigned>(EStart) + Offset;
      if (Table.fits(L.Ops[Op].Kind, T)) {
        Chosen = T;
        break;
      }
    }
    if (Chosen == ~0u) {
      // Force placement (classic IMS): at max(EStart, previous + 1).
      Chosen = std::max(static_cast<unsigned>(EStart), LastForced[Op] + 1);
      LastForced[Op] = Chosen;
      // Evict resource conflicts in that row.
      for (uint32_t Other = 0; Other != N; ++Other) {
        if (Other == Op || S.TimeOf[Other] == Unscheduled)
          continue;
        if (S.TimeOf[Other] % II != Chosen % II)
          continue;
        // Evict same-row ops that compete for the contended resource; for
        // simplicity evict all same-row ops of the same kind first, then
        // any same-row op if still no slot fits.
        Table.remove(L.Ops[Other].Kind, S.TimeOf[Other]);
        S.TimeOf[Other] = Unscheduled;
        if (Table.fits(L.Ops[Op].Kind, Chosen))
          break;
      }
      if (!Table.fits(L.Ops[Op].Kind, Chosen))
        return std::nullopt; // Could not make room (shouldn't happen).
    }

    S.TimeOf[Op] = Chosen;
    Table.add(L.Ops[Op].Kind, Chosen);

    // Evict successors/predecessors whose dependence is now violated.
    for (uint32_t EIdx : OutEdges[Op]) {
      const DdgEdge &E = L.Edges[EIdx];
      if (S.TimeOf[E.Dst] == Unscheduled)
        continue;
      long Bound = static_cast<long>(Chosen) + static_cast<long>(E.Latency) -
                   static_cast<long>(II) * static_cast<long>(E.Distance);
      if (static_cast<long>(S.TimeOf[E.Dst]) < Bound) {
        Table.remove(L.Ops[E.Dst].Kind, S.TimeOf[E.Dst]);
        S.TimeOf[E.Dst] = Unscheduled;
      }
    }
    for (uint32_t EIdx : InEdges[Op]) {
      const DdgEdge &E = L.Edges[EIdx];
      if (S.TimeOf[E.Src] == Unscheduled)
        continue;
      long Bound = static_cast<long>(S.TimeOf[E.Src]) +
                   static_cast<long>(E.Latency) -
                   static_cast<long>(II) * static_cast<long>(E.Distance);
      if (static_cast<long>(Chosen) < Bound) {
        Table.remove(L.Ops[E.Src].Kind, S.TimeOf[E.Src]);
        S.TimeOf[E.Src] = Unscheduled;
      }
    }
  }

  // Normalize: shift so the earliest time is < II (pure cosmetics).
  return S;
}

ModuloSchedule dra::scheduleLoop(const LoopDdg &L, const VliwMachine &M,
                                 unsigned MaxII) {
  unsigned Start = minII(L, M);
  if (MaxII == 0) {
    MaxII = Start + 64;
    for (const DdgOp &Op : L.Ops)
      MaxII += Op.Latency;
  }
  unsigned Attempts = 0;
  for (unsigned II = Start; II <= MaxII; ++II) {
    ++Attempts;
    if (auto S = scheduleAtII(L, M, II)) {
      S->Attempts = Attempts;
      return *S;
    }
  }
  // Fully sequential fallback: II = sum of latencies always schedules.
  unsigned SeqII = 1;
  for (const DdgOp &Op : L.Ops)
    SeqII += Op.Latency;
  auto S = scheduleAtII(L, M, SeqII, 64);
  assert(S && "sequential II must schedule");
  S->Attempts = Attempts + 1;
  return *S;
}

RegRequirement dra::computeRegRequirement(const LoopDdg &L,
                                          const ModuloSchedule &S) {
  RegRequirement R;
  size_t N = L.Ops.size();
  R.SpanOf.assign(N, 0);
  if (S.II == 0 || N == 0)
    return R;
  unsigned II = S.II;

  for (uint32_t Op = 0; Op != N; ++Op) {
    if (!L.Ops[Op].Defines)
      continue;
    long Def = S.TimeOf[Op];
    long LastUse = Def + 1; // A defined value lives at least one cycle.
    for (const DdgEdge &E : L.Edges) {
      if (!E.IsData || E.Src != Op)
        continue;
      long Use = static_cast<long>(S.TimeOf[E.Dst]) +
                 static_cast<long>(II) * static_cast<long>(E.Distance);
      LastUse = std::max(LastUse, Use);
    }
    R.SpanOf[Op] = static_cast<unsigned>(LastUse - Def);
  }

  // Steady-state occupancy per phase.
  std::vector<unsigned> Occupancy(II, 0);
  for (uint32_t Op = 0; Op != N; ++Op) {
    unsigned Span = R.SpanOf[Op];
    if (Span == 0)
      continue;
    R.Mve = std::max(R.Mve, (Span + II - 1) / II);
    for (unsigned Offset = 0; Offset != std::min(Span, II); ++Offset) {
      unsigned Phase = (S.TimeOf[Op] + Offset) % II;
      Occupancy[Phase] += (Span - Offset + II - 1) / II;
    }
  }
  for (unsigned Phase = 0; Phase != II; ++Phase)
    R.MaxLive = std::max(R.MaxLive, Occupancy[Phase]);
  return R;
}
