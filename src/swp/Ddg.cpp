//===- swp/Ddg.cpp - Loop data-dependence graphs --------------------------===//

#include "swp/Ddg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dra;

unsigned dra::resMii(const LoopDdg &L, const VliwMachine &M) {
  auto CeilDiv = [](size_t A, size_t B) {
    return static_cast<unsigned>((A + B - 1) / B);
  };
  unsigned Total = CeilDiv(L.Ops.size(), M.IssueSlots);
  unsigned Mem = CeilDiv(L.countKind(FuKind::Mem), M.MemPorts);
  unsigned Mul = CeilDiv(L.countKind(FuKind::Mul), M.MulUnits);
  unsigned Result = std::max({1u, Total, Mem, Mul});
  return Result;
}

namespace {

/// True if, for the given II, some dependence cycle has positive total
/// (latency - II * distance) — i.e. the II is infeasible. Bellman-Ford
/// style relaxation for longest paths with positive-cycle detection.
bool hasPositiveCycle(const LoopDdg &L, unsigned II) {
  size_t N = L.Ops.size();
  // Longest-path distances, starting at 0 everywhere (we only care about
  // cycles, so every node is a source).
  std::vector<double> Dist(N, 0.0);
  for (size_t Round = 0; Round <= N; ++Round) {
    bool Changed = false;
    for (const DdgEdge &E : L.Edges) {
      double W = static_cast<double>(E.Latency) -
                 static_cast<double>(II) * static_cast<double>(E.Distance);
      if (Dist[E.Src] + W > Dist[E.Dst] + 1e-9) {
        Dist[E.Dst] = Dist[E.Src] + W;
        Changed = true;
      }
    }
    if (!Changed)
      return false;
  }
  return true; // Still relaxing after N rounds: positive cycle.
}

} // namespace

unsigned dra::recMii(const LoopDdg &L) {
  // Find the smallest II without a positive cycle. Latencies are small, so
  // a linear scan from 1 is fine (II is bounded by sum of latencies on the
  // worst cycle).
  unsigned MaxII = 2;
  for (const DdgOp &Op : L.Ops)
    MaxII += Op.Latency;
  for (unsigned II = 1; II <= MaxII; ++II)
    if (!hasPositiveCycle(L, II))
      return II;
  assert(false && "recMii: no feasible II found (zero-distance cycle?)");
  return MaxII;
}

unsigned dra::minII(const LoopDdg &L, const VliwMachine &M) {
  return std::max(resMii(L, M), recMii(L));
}
