//===- server/ServerMetrics.h - server.* metric series ----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's dra-metrics-v1 surface. Two kinds of series:
///
///  * **Live histograms** — `server.latency_us{tier=hit_mem|hit_disk|miss}`
///    (request service time by cache tier) and `server.frame_us` (wire
///    round-trip including framing) are observed into the shared registry
///    at event time; histogram samples only accumulate, so the periodic
///    export just re-serializes them.
///  * **Snapshot counters/gauges** — connection/request/shed/error totals
///    live in atomics owned by ServerMetrics and are written into the
///    registry with MetricsRegistry::setCount on every flush() (absolute
///    assignment), so the server's periodic `--metrics-interval` export
///    never double-counts. Every series is emitted even at zero so
///    `dra-stats --fail-on=server.shed` always finds its metric.
///
/// Series written by flush():
///
///   counters: server.connections, server.requests, server.accepted,
///             server.shed, server.errors, server.bad_frames,
///             server.ctl_requests, trace.requests, trace.spans,
///             trace.dropped_spans, trace.slow_requests
///   gauges:   server.queue_depth, server.queue_limit, server.workers
///
/// The trace.* series cover request-scoped tracing: how many requests
/// opted in (`traceid=` on the wire), how many spans were collected, how
/// many were dropped at the TraceContext span cap (CI gates this at 0 —
/// a dropped span means the cap is too small for real workloads), and how
/// many requests crossed the flight recorder's slow threshold.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SERVER_SERVERMETRICS_H
#define DRA_SERVER_SERVERMETRICS_H

#include "driver/Metrics.h"
#include "server/RequestQueue.h"

#include <atomic>
#include <cstdint>

namespace dra {

class ServerMetrics {
public:
  /// Monotonic totals; incremented at event time by the connection loops.
  std::atomic<uint64_t> Connections{0}; ///< Accepted connections.
  std::atomic<uint64_t> Requests{0};    ///< Well-framed compile requests.
  std::atomic<uint64_t> CtlRequests{0}; ///< dra-ctl-v1 requests answered.
  std::atomic<uint64_t> Errors{0};      ///< `status=error` responses sent.
  std::atomic<uint64_t> BadFrames{0};   ///< Frames rejected below the
                                        ///< request layer (bad magic,
                                        ///< oversize, truncated, io error).
  std::atomic<uint64_t> TracedRequests{0}; ///< Requests with a client id.
  std::atomic<uint64_t> TraceSpans{0};     ///< Spans collected, all reqs.
  std::atomic<uint64_t> TraceDropped{0};   ///< Spans lost to the cap.
  std::atomic<uint64_t> SlowRequests{0};   ///< Requests >= slow threshold.

  /// Records one request's service latency. \p Tier is the cache tier for
  /// ok responses ("hit_mem" | "hit_disk" | "miss") and the outcome for
  /// the rest ("error" | "shed"), so failure tails are visible to
  /// dra-stats gates instead of vanishing from the histograms.
  void observeLatency(MetricsRegistry &M, const char *Tier, double Us) const {
    M.observe("server.latency_us", Us, MetricLabels{{"tier", Tier}});
  }

  /// Snapshots every counter/gauge series into \p M (absolute values; safe
  /// to call repeatedly), including the admission queue's totals and its
  /// instantaneous depth. Every series is written even at zero.
  void flush(MetricsRegistry &M, const AdmissionQueue &Q,
             unsigned Workers) const {
    M.setCount("server.connections", double(Connections.load()));
    M.setCount("server.requests", double(Requests.load()));
    M.setCount("server.ctl_requests", double(CtlRequests.load()));
    M.setCount("server.accepted", double(Q.admitted()));
    M.setCount("server.shed", double(Q.shed()));
    M.setCount("server.errors", double(Errors.load()));
    M.setCount("server.bad_frames", double(BadFrames.load()));
    M.setCount("trace.requests", double(TracedRequests.load()));
    M.setCount("trace.spans", double(TraceSpans.load()));
    M.setCount("trace.dropped_spans", double(TraceDropped.load()));
    M.setCount("trace.slow_requests", double(SlowRequests.load()));
    M.gauge("server.queue_depth", double(Q.depth()));
    M.gauge("server.queue_limit", double(Q.limit()));
    M.gauge("server.workers", double(Workers));
  }
};

} // namespace dra

#endif // DRA_SERVER_SERVERMETRICS_H
