//===- server/Server.cpp - Compilation-as-a-service daemon core -----------===//

#include "server/Server.h"

#include "ir/Parser.h"

#include <cerrno>
#include <cstring>
#include <exception>
#include <future>
#include <optional>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

using namespace dra;

CompileServer::CompileServer(const ServerOptions &O)
    : Opts(O),
      Workers(O.Workers ? O.Workers : ThreadPool::defaultWorkerCount()),
      Queue(O.QueueDepth),
      Recorder(O.FlightRecorderSize, O.SlowRequestUs),
      TraceSeed(steadyClockNs()),
      Pool(std::make_unique<ThreadPool>(Workers + 1)) {}

CompileServer::~CompileServer() { stop(); }

bool CompileServer::start(std::string *Err) {
  if (Running.load()) {
    if (Err)
      *Err = "server already running";
    return false;
  }
  ListenFd = listenUnixSocket(Opts.SocketPath, Opts.Backlog, Err);
  if (ListenFd < 0)
    return false;
  StartNs = steadyClockNs();
  Stopping.store(false);
  Running.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void CompileServer::stop() {
  bool WasRunning = true;
  if (!Running.compare_exchange_strong(WasRunning, false))
    return;
  Stopping.store(true);

  // Wake the acceptor (shutdown, not just close: close of an fd another
  // thread is blocked in accept() on does not reliably wake it).
  ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;

  // Half-close every live connection: the next readFrame sees a clean
  // EOF, but a response being written right now still goes out.
  {
    std::lock_guard<std::mutex> Lock(ConnMtx);
    for (Conn &C : Conns)
      if (C.Fd >= 0)
        ::shutdown(C.Fd, SHUT_RD);
  }
  for (Conn &C : Conns)
    if (C.T.joinable())
      C.T.join();
  Conns.clear();

  Queue.drain();
  flushMetrics();
  ::unlink(Opts.SocketPath.c_str());
}

void CompileServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // listener shut down (stop()) or unrecoverable
    }
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    uint64_t ConnId = SM.Connections.fetch_add(1) + 1;
    std::lock_guard<std::mutex> Lock(ConnMtx);
    Conns.emplace_back();
    Conn &C = Conns.back();
    C.Fd = Fd;
    C.Id = ConnId;
    C.T = std::thread([this, &C] { serveConnection(C); });
  }
}

void CompileServer::serveConnection(Conn &Self) {
  const int Fd = Self.Fd;
  const uint64_t ConnId = Self.Id;
  for (;;) {
    std::string Payload;
    FrameStatus St = readFrame(Fd, Payload, Opts.MaxFrameBytes);
    if (St == FrameStatus::Eof)
      break;
    if (St == FrameStatus::Ok) {
      CompileResponse Resp = handleRequest(Payload, ConnId);
      if (!writeFrame(Fd, encodeResponse(Resp)))
        break; // peer disconnected mid-response; nothing left to do
      continue;
    }
    // Below the request layer. BadMagic and Oversize leave the stream
    // desynced and Truncated/IoError mean the peer is gone, so the
    // connection is dropped either way — but for the first two the peer
    // may still be listening, so send a structured error first.
    SM.BadFrames.fetch_add(1);
    if (St == FrameStatus::BadMagic || St == FrameStatus::Oversize) {
      CompileResponse Resp;
      Resp.Status = ResponseStatus::Error;
      Resp.Body = std::string("frame rejected: ") + frameStatusName(St);
      writeFrame(Fd, encodeResponse(Resp));
    }
    break;
  }
  {
    std::lock_guard<std::mutex> Lock(ConnMtx);
    Self.Fd = -1; // stop() must not shutdown() a recycled descriptor
  }
  ::close(Fd);
}

CompileResponse CompileServer::handleRequest(const std::string &Payload,
                                             uint64_t ConnId) {
  if (isCtlPayload(Payload))
    return handleControl(Payload);

  SM.Requests.fetch_add(1);
  const uint64_t BeginNs = steadyClockNs();
  CompileResponse Resp;

  CompileRequest Req;
  std::string DecodeErr;
  const bool Decoded = decodeRequest(Payload, Req, &DecodeErr);

  // A span collector exists whenever the flight recorder wants one or the
  // client asked (traceid on the wire); otherwise Trace stays null and
  // every instrumentation point below is a pointer test.
  const bool ClientTraced = Decoded && Req.TraceId != 0;
  const bool Collect = ClientTraced || Recorder.enabled();
  TraceContext TC(ClientTraced
                      ? Req.TraceId
                      : deriveTraceId(TraceSeed, TraceSeq.fetch_add(1)));
  TraceContext *Trace = Collect ? &TC : nullptr;
  if (Trace)
    TC.nameCurrentThread("conn-" + std::to_string(ConnId));

  double QueueUs = 0, CompileUs = 0;

  // Every exit path funnels through here: latency is observed for ok,
  // error, *and* shed responses (tier-labeled by outcome), the request
  // lands in the flight recorder, and — only when the client traced —
  // the span summary is attached to the response.
  auto Finish = [&]() -> CompileResponse & {
    const uint64_t EndNs = steadyClockNs();
    const double TotalUs = double(EndNs - BeginNs) / 1000.0;
    const char *TierLabel = Resp.Status == ResponseStatus::Ok
                                ? Resp.Tier.c_str()
                                : (Resp.Status == ResponseStatus::Shed
                                       ? "shed"
                                       : "error");
    if (Opts.Metrics)
      SM.observeLatency(*Opts.Metrics, TierLabel, TotalUs);
    if (Trace) {
      TC.record("request", BeginNs, EndNs, /*Depth=*/0);
      SM.TraceSpans.fetch_add(TC.spanCount());
      SM.TraceDropped.fetch_add(TC.droppedSpans());
    }
    if (TotalUs >= double(Recorder.slowThresholdUs()))
      SM.SlowRequests.fetch_add(1);
    if (ClientTraced) {
      SM.TracedRequests.fetch_add(1);
      Resp.TraceId = Req.TraceId;
      Resp.ServerPid = osProcessId();
      for (const TraceRecord &S : TC.records())
        Resp.Spans.push_back(
            {S.Name, S.Tid, S.Depth, S.BeginNs, S.EndNs - S.BeginNs});
      Resp.ThreadNames = TC.threadNames();
    }
    RequestRecord Rec;
    Rec.TraceId = TC.traceId();
    Rec.ClientTraced = ClientTraced;
    Rec.ConnId = ConnId;
    Rec.Scheme = !Decoded ? "?" : (Req.Auto ? "auto" : wireSchemeName(Req.S));
    Rec.Outcome = Resp.Status == ResponseStatus::Ok
                      ? "ok"
                      : (Resp.Status == ResponseStatus::Shed ? "shed"
                                                             : "error");
    Rec.Tier = TierLabel;
    Rec.BeginNs = BeginNs;
    Rec.TotalUs = TotalUs;
    Rec.QueueUs = QueueUs;
    Rec.CompileUs = CompileUs;
    if (Resp.Status == ResponseStatus::Error)
      Rec.Error = Resp.Body;
    if (Trace) {
      Rec.Spans = TC.records();
      Rec.ThreadNames = TC.threadNames();
    }
    Recorder.record(std::move(Rec));
    return Resp;
  };

  auto Fail = [&](std::string Msg) -> CompileResponse & {
    SM.Errors.fetch_add(1);
    Resp.Status = ResponseStatus::Error;
    Resp.Tier = "none";
    Resp.Body = std::move(Msg);
    return Finish();
  };

  if (!Decoded)
    return Fail("bad request: " + DecodeErr);
  // scheme=auto delegates the choice to the portfolio; a server running
  // without one answers with a structured error instead of silently
  // picking a scheme the client did not ask for.
  if (Req.Auto && Opts.Portfolio == PortfolioMode::Off)
    return Fail("scheme=auto requires a server started with "
                "--portfolio=race or --portfolio=choose");
  if (Req.S != Scheme::Baseline && Req.S != Scheme::OSpill &&
      !Req.toConfig().Enc.valid())
    return Fail("invalid encoding config (regn/diffn/diffw)");
  std::optional<Function> F;
  {
    ScopedTraceSpan Span(Trace, "parse", /*Depth=*/1);
    std::string Err;
    F = parseFunction(Req.Body, &Err);
    if (!F)
      return Fail("parse error: " + Err);
    if (!verifyFunction(*F, &Err))
      return Fail("invalid function: " + Err);
  }

  if (!Queue.tryAdmit()) {
    Resp.Status = ResponseStatus::Shed;
    Resp.Tier = "none";
    Resp.Body.clear();
    return Finish();
  }
  Resp = compileAdmitted(Req, *F, Trace, QueueUs, CompileUs);
  Queue.release();

  if (Resp.Status == ResponseStatus::Error)
    SM.Errors.fetch_add(1);
  return Finish();
}

CompileResponse CompileServer::compileAdmitted(const CompileRequest &Req,
                                               const Function &F,
                                               TraceContext *Trace,
                                               double &QueueUs,
                                               double &CompileUs) {
  // The connection thread blocks on the future; the pool bounds how many
  // compiles actually run at once. submit() drops escaped exceptions, so
  // the closure must resolve the promise on every path itself.
  std::promise<CompileResponse> Done;
  std::future<CompileResponse> Result = Done.get_future();
  const uint64_t SubmitNs = steadyClockNs();
  const uint64_t ConnTid = Trace ? osThreadId() : 0;
  // Written inside the task, read after Result.get(); the promise/future
  // handoff provides the happens-before edge.
  uint64_t TaskStartNs = SubmitNs, TaskEndNs = SubmitNs;
  Pool->submit([&, SubmitNs, ConnTid] {
    CompileResponse R;
    TaskStartNs = steadyClockNs();
    if (Trace) {
      // Queue wait belongs to the *connection* thread's track: it is time
      // this request spent waiting for a worker, closed by the moment the
      // worker actually started.
      Trace->recordOn(ConnTid, "queue_wait", SubmitNs, TaskStartNs,
                      /*Depth=*/1);
      Trace->nameCurrentThread(
          "worker-" + std::to_string(ThreadPool::currentWorker()));
    }
    try {
      ScopedTraceSpan CompileSpan(Trace, "compile", /*Depth=*/1);
      PipelineConfig C = Req.toConfig();
      C.Trace = Trace;
      if (Req.Auto) {
        C.Portfolio.Mode = Opts.Portfolio;
        C.Portfolio.Jobs = Opts.PortfolioJobs;
        C.Portfolio.Table = Opts.PortfolioTable;
        // Bounded-cardinality portfolio.* counters (mode/scheme labels
        // only) go to the server registry; C.Metrics stays null so the
        // per-function pipeline series never explode under live traffic.
        C.Portfolio.Metrics = Opts.Metrics;
      }
      PipelineResult PR;
      const char *Tier = nullptr;
      if (Opts.Cache && Opts.Cache->lookupTiered(F, C, PR, &Tier)) {
        R.Tier = std::strcmp(Tier, "disk") == 0 ? "hit_disk" : "hit_mem";
      } else if (C.Portfolio.Mode != PortfolioMode::Off) {
        // Race (or choose) directly so the winning arm's concrete config
        // is known: the result stores under the portfolio key *and* the
        // winner's single-scheme key, exactly like runPipeline's own
        // cached dispatch, without double-counting a cache miss.
        PipelineConfig WinnerCfg;
        PR = runPortfolio(F, C, &WinnerCfg);
        if (C.Trace)
          for (const StageSpan &S : PR.Spans)
            C.Trace->record(S.Stage, S.BeginNs, S.EndNs, S.Depth + 2);
        if (Opts.Cache) {
          Opts.Cache->store(F, C, PR);
          Opts.Cache->store(F, WinnerCfg, PR);
        }
        R.Tier = "miss";
      } else {
        PR = runPipeline(F, C); // C.Cache is null: no double-counted stats
        if (Opts.Cache)
          Opts.Cache->store(F, C, PR);
        R.Tier = "miss";
      }
      R.Status = ResponseStatus::Ok;
      R.Body = ResultCache::serializeResult(PR);
    } catch (const std::exception &E) {
      R.Status = ResponseStatus::Error;
      R.Tier = "none";
      R.Body = std::string("compile failed: ") + E.what();
    } catch (...) {
      R.Status = ResponseStatus::Error;
      R.Tier = "none";
      R.Body = "compile failed";
    }
    TaskEndNs = steadyClockNs();
    Done.set_value(std::move(R));
  });
  CompileResponse R = Result.get();
  QueueUs = double(TaskStartNs - SubmitNs) / 1000.0;
  CompileUs = double(TaskEndNs - TaskStartNs) / 1000.0;
  return R;
}

//===----------------------------------------------------------------------===//
// Control requests (dra-ctl-v1)
//===----------------------------------------------------------------------===//

CompileResponse CompileServer::handleControl(const std::string &Payload) {
  SM.CtlRequests.fetch_add(1);
  CompileResponse Resp;
  Resp.Tier = "none";

  CtlRequest Req;
  std::string Err;
  if (!decodeCtlRequest(Payload, Req, &Err)) {
    SM.Errors.fetch_add(1);
    Resp.Status = ResponseStatus::Error;
    Resp.Body = "bad control request: " + Err;
    return Resp;
  }

  std::ostringstream OS;
  if (Req.Cmd == "health") {
    OS << "{\"status\": \"ok\", \"pid\": " << osProcessId()
       << ", \"uptime_us\": ";
    writeJsonNumber(OS, double(steadyClockNs() - StartNs) / 1000.0);
    OS << "}";
  } else if (Req.Cmd == "stats") {
    writeStatsJson(OS);
  } else if (Req.Cmd == "recent") {
    writeRecentJson(OS, Req.RecentN);
  } else {
    SM.Errors.fetch_add(1);
    Resp.Status = ResponseStatus::Error;
    Resp.Body = "unknown control command '" + Req.Cmd + "'";
    return Resp;
  }
  Resp.Status = ResponseStatus::Ok;
  Resp.Body = OS.str();
  return Resp;
}

void CompileServer::writeStatsJson(std::ostream &OS) const {
  OS << "{\"server\": {"
     << "\"pid\": " << osProcessId() << ", \"uptime_us\": ";
  writeJsonNumber(OS, double(steadyClockNs() - StartNs) / 1000.0);
  OS << ", \"workers\": " << Workers
     << ", \"queue_depth\": " << Queue.depth()
     << ", \"queue_limit\": " << Queue.limit()
     << ", \"connections\": " << SM.Connections.load()
     << ", \"requests\": " << SM.Requests.load()
     << ", \"ctl_requests\": " << SM.CtlRequests.load()
     << ", \"accepted\": " << Queue.admitted()
     << ", \"shed\": " << Queue.shed()
     << ", \"errors\": " << SM.Errors.load()
     << ", \"bad_frames\": " << SM.BadFrames.load() << "}, ";

  OS << "\"trace\": {"
     << "\"requests\": " << SM.TracedRequests.load()
     << ", \"spans\": " << SM.TraceSpans.load()
     << ", \"dropped_spans\": " << SM.TraceDropped.load()
     << ", \"slow_requests\": " << SM.SlowRequests.load()
     << ", \"flight_capacity\": " << Recorder.capacity()
     << ", \"flight_recorded\": " << Recorder.recorded()
     << ", \"slow_threshold_us\": " << Recorder.slowThresholdUs() << "}, ";

  // Per-tier latency summaries, straight from the live registry (the same
  // numbers the dra-metrics-v1 export carries) — including the error/shed
  // tiers, so failure tails show up in dra-top.
  OS << "\"tiers\": [";
  bool First = true;
  if (Opts.Metrics)
    for (const auto &H : Opts.Metrics->histograms()) {
      if (H.Name != "server.latency_us")
        continue;
      std::string Tier = "?";
      for (const auto &[K, V] : H.Labels.entries())
        if (K == "tier")
          Tier = V;
      OS << (First ? "" : ", ") << "{\"tier\": \"" << jsonEscape(Tier)
         << "\", \"count\": " << H.Count << ", \"sum_us\": ";
      writeJsonNumber(OS, H.Sum);
      OS << ", \"min_us\": ";
      writeJsonNumber(OS, H.Min);
      OS << ", \"max_us\": ";
      writeJsonNumber(OS, H.Max);
      OS << ", \"p50_us\": ";
      writeJsonNumber(OS, H.P50);
      OS << ", \"p90_us\": ";
      writeJsonNumber(OS, H.P90);
      OS << ", \"p95_us\": ";
      writeJsonNumber(OS, H.P95);
      OS << ", \"p99_us\": ";
      writeJsonNumber(OS, H.P99);
      OS << "}";
      First = false;
    }
  OS << "]}";
}

void CompileServer::writeRecentJson(std::ostream &OS, size_t N) const {
  OS << "{\"records\": [";
  bool FirstRec = true;
  for (const RequestRecord &R : Recorder.recent(N)) {
    OS << (FirstRec ? "\n" : ",\n") << "  {\"seq\": " << R.Seq
       << ", \"traceid\": \"" << traceIdToHex(R.TraceId)
       << "\", \"client_traced\": " << (R.ClientTraced ? "true" : "false")
       << ", \"conn\": " << R.ConnId << ", \"scheme\": \""
       << jsonEscape(R.Scheme) << "\", \"outcome\": \""
       << jsonEscape(R.Outcome) << "\", \"tier\": \"" << jsonEscape(R.Tier)
       << "\", \"total_us\": ";
    writeJsonNumber(OS, R.TotalUs);
    OS << ", \"queue_us\": ";
    writeJsonNumber(OS, R.QueueUs);
    OS << ", \"compile_us\": ";
    writeJsonNumber(OS, R.CompileUs);
    OS << ", \"slow\": " << (R.Slow ? "true" : "false");
    if (!R.Error.empty())
      OS << ", \"error\": \"" << jsonEscape(R.Error) << "\"";
    if (!R.Spans.empty()) {
      OS << ", \"spans\": [";
      bool FirstSpan = true;
      for (const TraceRecord &S : R.Spans) {
        OS << (FirstSpan ? "" : ", ") << "{\"name\": \""
           << jsonEscape(S.Name) << "\", \"tid\": " << S.Tid
           << ", \"depth\": " << S.Depth << ", \"begin_ns\": " << S.BeginNs
           << ", \"dur_ns\": " << (S.EndNs - S.BeginNs) << "}";
        FirstSpan = false;
      }
      OS << "]";
    }
    if (!R.ThreadNames.empty()) {
      OS << ", \"threads\": [";
      bool FirstT = true;
      for (const auto &[Tid, Name] : R.ThreadNames) {
        OS << (FirstT ? "" : ", ") << "{\"tid\": " << Tid
           << ", \"name\": \"" << jsonEscape(Name) << "\"}";
        FirstT = false;
      }
      OS << "]";
    }
    OS << "}";
    FirstRec = false;
  }
  OS << (FirstRec ? "]" : "\n]") << "}";
}

void CompileServer::flushMetrics() {
  if (!Opts.Metrics)
    return;
  SM.flush(*Opts.Metrics, Queue, Workers);
  if (Opts.Cache)
    Opts.Cache->flushMetrics(*Opts.Metrics);
}
