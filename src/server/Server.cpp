//===- server/Server.cpp - Compilation-as-a-service daemon core -----------===//

#include "server/Server.h"

#include "ir/Parser.h"

#include <cerrno>
#include <cstring>
#include <exception>
#include <future>
#include <optional>

#include <sys/socket.h>
#include <unistd.h>

using namespace dra;

CompileServer::CompileServer(const ServerOptions &O)
    : Opts(O),
      Workers(O.Workers ? O.Workers : ThreadPool::defaultWorkerCount()),
      Queue(O.QueueDepth),
      Pool(std::make_unique<ThreadPool>(Workers + 1)) {}

CompileServer::~CompileServer() { stop(); }

bool CompileServer::start(std::string *Err) {
  if (Running.load()) {
    if (Err)
      *Err = "server already running";
    return false;
  }
  ListenFd = listenUnixSocket(Opts.SocketPath, Opts.Backlog, Err);
  if (ListenFd < 0)
    return false;
  Stopping.store(false);
  Running.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void CompileServer::stop() {
  bool WasRunning = true;
  if (!Running.compare_exchange_strong(WasRunning, false))
    return;
  Stopping.store(true);

  // Wake the acceptor (shutdown, not just close: close of an fd another
  // thread is blocked in accept() on does not reliably wake it).
  ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;

  // Half-close every live connection: the next readFrame sees a clean
  // EOF, but a response being written right now still goes out.
  {
    std::lock_guard<std::mutex> Lock(ConnMtx);
    for (Conn &C : Conns)
      if (C.Fd >= 0)
        ::shutdown(C.Fd, SHUT_RD);
  }
  for (Conn &C : Conns)
    if (C.T.joinable())
      C.T.join();
  Conns.clear();

  Queue.drain();
  flushMetrics();
  ::unlink(Opts.SocketPath.c_str());
}

void CompileServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // listener shut down (stop()) or unrecoverable
    }
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    SM.Connections.fetch_add(1);
    std::lock_guard<std::mutex> Lock(ConnMtx);
    Conns.emplace_back();
    Conn &C = Conns.back();
    C.Fd = Fd;
    C.T = std::thread([this, &C] { serveConnection(C); });
  }
}

void CompileServer::serveConnection(Conn &Self) {
  const int Fd = Self.Fd;
  for (;;) {
    std::string Payload;
    FrameStatus St = readFrame(Fd, Payload, Opts.MaxFrameBytes);
    if (St == FrameStatus::Eof)
      break;
    if (St == FrameStatus::Ok) {
      CompileResponse Resp = handleRequest(Payload);
      if (!writeFrame(Fd, encodeResponse(Resp)))
        break; // peer disconnected mid-response; nothing left to do
      continue;
    }
    // Below the request layer. BadMagic and Oversize leave the stream
    // desynced and Truncated/IoError mean the peer is gone, so the
    // connection is dropped either way — but for the first two the peer
    // may still be listening, so send a structured error first.
    SM.BadFrames.fetch_add(1);
    if (St == FrameStatus::BadMagic || St == FrameStatus::Oversize) {
      CompileResponse Resp;
      Resp.Status = ResponseStatus::Error;
      Resp.Body = std::string("frame rejected: ") + frameStatusName(St);
      writeFrame(Fd, encodeResponse(Resp));
    }
    break;
  }
  {
    std::lock_guard<std::mutex> Lock(ConnMtx);
    Self.Fd = -1; // stop() must not shutdown() a recycled descriptor
  }
  ::close(Fd);
}

CompileResponse CompileServer::handleRequest(const std::string &Payload) {
  SM.Requests.fetch_add(1);
  CompileResponse Resp;

  auto Fail = [&](std::string Msg) {
    SM.Errors.fetch_add(1);
    Resp.Status = ResponseStatus::Error;
    Resp.Tier = "none";
    Resp.Body = std::move(Msg);
    return Resp;
  };

  CompileRequest Req;
  std::string Err;
  if (!decodeRequest(Payload, Req, &Err))
    return Fail("bad request: " + Err);
  if (Req.S != Scheme::Baseline && Req.S != Scheme::OSpill &&
      !Req.toConfig().Enc.valid())
    return Fail("invalid encoding config (regn/diffn/diffw)");
  std::optional<Function> F = parseFunction(Req.Body, &Err);
  if (!F)
    return Fail("parse error: " + Err);
  if (!verifyFunction(*F, &Err))
    return Fail("invalid function: " + Err);

  if (!Queue.tryAdmit()) {
    Resp.Status = ResponseStatus::Shed;
    Resp.Tier = "none";
    Resp.Body.clear();
    return Resp;
  }
  uint64_t BeginNs = steadyClockNs();
  Resp = compileAdmitted(Req, *F);
  uint64_t EndNs = steadyClockNs();
  Queue.release();

  if (Resp.Status == ResponseStatus::Error)
    SM.Errors.fetch_add(1);
  else if (Opts.Metrics)
    SM.observeLatency(*Opts.Metrics, Resp.Tier.c_str(),
                      double(EndNs - BeginNs) / 1000.0);
  return Resp;
}

CompileResponse CompileServer::compileAdmitted(const CompileRequest &Req,
                                               const Function &F) {
  // The connection thread blocks on the future; the pool bounds how many
  // compiles actually run at once. submit() drops escaped exceptions, so
  // the closure must resolve the promise on every path itself.
  std::promise<CompileResponse> Done;
  std::future<CompileResponse> Result = Done.get_future();
  Pool->submit([this, &Req, &F, &Done] {
    CompileResponse R;
    try {
      PipelineConfig C = Req.toConfig();
      PipelineResult PR;
      const char *Tier = nullptr;
      if (Opts.Cache && Opts.Cache->lookupTiered(F, C, PR, &Tier)) {
        R.Tier = std::strcmp(Tier, "disk") == 0 ? "hit_disk" : "hit_mem";
      } else {
        PR = runPipeline(F, C); // C.Cache is null: no double-counted stats
        if (Opts.Cache)
          Opts.Cache->store(F, C, PR);
        R.Tier = "miss";
      }
      R.Status = ResponseStatus::Ok;
      R.Body = ResultCache::serializeResult(PR);
    } catch (const std::exception &E) {
      R.Status = ResponseStatus::Error;
      R.Tier = "none";
      R.Body = std::string("compile failed: ") + E.what();
    } catch (...) {
      R.Status = ResponseStatus::Error;
      R.Tier = "none";
      R.Body = "compile failed";
    }
    Done.set_value(std::move(R));
  });
  return Result.get();
}

void CompileServer::flushMetrics() {
  if (!Opts.Metrics)
    return;
  SM.flush(*Opts.Metrics, Queue, Workers);
  if (Opts.Cache)
    Opts.Cache->flushMetrics(*Opts.Metrics);
}
