//===- server/FlightRecorder.h - Last-N request ring ------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's flight recorder: a lock-sharded ring buffer retaining the
/// last N request records — trace id, connection, scheme, cache tier,
/// per-phase durations, and the outcome *including* shed and error
/// responses, which the latency histograms alone would aggregate away.
///
/// Every admitted-or-not request is recorded; full span detail is kept
/// only for requests at or above the slow-request threshold (everything
/// else keeps the one-line summary), so the recorder's memory stays
/// O(capacity) even when a pathological input produces thousands of
/// sub-spans. `dra-ctl-v1 recent` serves these records to `dra-top`.
///
/// Sharding: records land in `Seq % NumShards`, so concurrent connection
/// threads contend on different mutexes; `recent()` locks shard-by-shard,
/// merges, and orders by sequence number — the global admission order is
/// the atomic Seq counter, not lock-acquisition order.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SERVER_FLIGHTRECORDER_H
#define DRA_SERVER_FLIGHTRECORDER_H

#include "driver/Trace.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dra {

/// Everything the server knows about one finished request.
struct RequestRecord {
  uint64_t Seq = 0;     ///< Global arrival order (1-based); recorder-assigned.
  uint64_t TraceId = 0; ///< Client-sent id, or a server-derived one.
  bool ClientTraced = false; ///< True when the client sent the id.
  uint64_t ConnId = 0;       ///< Serving connection (1-based accept order).
  std::string Scheme;        ///< Wire scheme name; "?" before decode.
  std::string Outcome;       ///< "ok" | "shed" | "error".
  std::string Tier;          ///< Latency-histogram tier label
                             ///< (hit_mem|hit_disk|miss|error|shed).
  uint64_t BeginNs = 0;      ///< Request arrival, absolute steadyClockNs().
  double TotalUs = 0;        ///< Arrival to response-ready.
  double QueueUs = 0;        ///< Admission to pool-task start.
  double CompileUs = 0;      ///< Cache lookup + pipeline on the worker.
  bool Slow = false;         ///< TotalUs >= threshold; recorder-assigned.
  std::string Error;         ///< Diagnostic for error outcomes.
  /// Full span detail (and thread names for display); kept for slow
  /// requests only, cleared on everything else.
  std::vector<TraceRecord> Spans;
  std::vector<std::pair<uint64_t, std::string>> ThreadNames;
};

class FlightRecorder {
public:
  static constexpr size_t NumShards = 8;

  /// \p Capacity 0 disables recording entirely (record() is a counter
  /// bump); \p SlowUs is the full-span-detail escalation threshold.
  FlightRecorder(size_t Capacity, uint64_t SlowUs)
      : Capacity(Capacity), SlowUs(SlowUs) {
    size_t PerShard = Capacity ? (Capacity + NumShards - 1) / NumShards : 0;
    for (Shard &S : Shards)
      S.Cap = PerShard;
  }

  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  bool enabled() const { return Capacity > 0; }
  size_t capacity() const { return Capacity; }
  uint64_t slowThresholdUs() const { return SlowUs; }

  /// Total requests seen / seen at-or-above the slow threshold.
  uint64_t recorded() const { return Seq.load(std::memory_order_relaxed); }
  uint64_t slowCount() const { return Slow.load(std::memory_order_relaxed); }

  /// Files one finished request. Assigns Seq and the Slow flag; drops
  /// span detail below the threshold. Returns the sequence number.
  uint64_t record(RequestRecord R) {
    uint64_t S = Seq.fetch_add(1, std::memory_order_relaxed) + 1;
    R.Seq = S;
    R.Slow = R.TotalUs >= double(SlowUs);
    if (R.Slow)
      Slow.fetch_add(1, std::memory_order_relaxed);
    else {
      R.Spans.clear();
      R.ThreadNames.clear();
    }
    if (!Capacity)
      return S;
    Shard &Sh = Shards[S % NumShards];
    std::lock_guard<std::mutex> Lock(Sh.Mtx);
    if (Sh.Ring.size() < Sh.Cap) {
      Sh.Ring.push_back(std::move(R));
    } else {
      Sh.Ring[Sh.Next] = std::move(R);
      Sh.Next = (Sh.Next + 1) % Sh.Cap;
    }
    return S;
  }

  /// The newest (up to) \p N records, newest first.
  std::vector<RequestRecord> recent(size_t N) const {
    std::vector<RequestRecord> Out;
    for (const Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Lock(Sh.Mtx);
      Out.insert(Out.end(), Sh.Ring.begin(), Sh.Ring.end());
    }
    std::sort(Out.begin(), Out.end(),
              [](const RequestRecord &A, const RequestRecord &B) {
                return A.Seq > B.Seq;
              });
    if (Out.size() > N)
      Out.resize(N);
    return Out;
  }

private:
  struct Shard {
    mutable std::mutex Mtx;
    std::vector<RequestRecord> Ring; ///< Grows to Cap, then wraps at Next.
    size_t Next = 0;
    size_t Cap = 0;
  };

  const size_t Capacity;
  const uint64_t SlowUs;
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> Slow{0};
  Shard Shards[NumShards];
};

} // namespace dra

#endif // DRA_SERVER_FLIGHTRECORDER_H
