//===- server/Protocol.cpp - Compile-service wire protocol ----------------===//

#include "server/Protocol.h"

#include "driver/Trace.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dra;

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

const char *dra::frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::BadMagic:
    return "bad-magic";
  case FrameStatus::Oversize:
    return "oversize";
  case FrameStatus::Truncated:
    return "truncated";
  case FrameStatus::IoError:
    return "io-error";
  }
  return "unknown";
}

namespace {

/// Reads exactly \p Len bytes. Returns Ok, or Truncated/IoError; \p SawAny
/// reports whether any byte arrived (distinguishes clean EOF from a
/// mid-frame close).
FrameStatus recvExact(int Fd, void *Buf, size_t Len, bool &SawAny) {
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N > 0) {
      SawAny = true;
      Got += static_cast<size_t>(N);
      continue;
    }
    if (N == 0)
      return FrameStatus::Truncated;
    if (errno == EINTR)
      continue;
    return FrameStatus::IoError;
  }
  return FrameStatus::Ok;
}

uint32_t loadLe32(const unsigned char *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

void storeLe32(unsigned char *P, uint32_t V) {
  P[0] = static_cast<unsigned char>(V);
  P[1] = static_cast<unsigned char>(V >> 8);
  P[2] = static_cast<unsigned char>(V >> 16);
  P[3] = static_cast<unsigned char>(V >> 24);
}

} // namespace

FrameStatus dra::readFrame(int Fd, std::string &Payload, size_t MaxBytes) {
  unsigned char Header[8];
  bool SawAny = false;
  FrameStatus St = recvExact(Fd, Header, sizeof Header, SawAny);
  if (St != FrameStatus::Ok)
    return St == FrameStatus::Truncated && !SawAny ? FrameStatus::Eof : St;
  if (loadLe32(Header) != FrameMagic)
    return FrameStatus::BadMagic;
  uint32_t Len = loadLe32(Header + 4);
  if (Len > MaxBytes)
    return FrameStatus::Oversize; // rejected before any allocation
  Payload.resize(Len);
  if (Len == 0)
    return FrameStatus::Ok;
  return recvExact(Fd, Payload.data(), Len, SawAny);
}

bool dra::writeFrame(int Fd, const std::string &Payload) {
  unsigned char Header[8];
  storeLe32(Header, FrameMagic);
  storeLe32(Header + 4, static_cast<uint32_t>(Payload.size()));
  auto SendAll = [Fd](const char *P, size_t Len) {
    size_t Sent = 0;
    while (Sent < Len) {
      // MSG_NOSIGNAL: a peer that disconnected mid-response surfaces as
      // EPIPE (-> false) instead of killing the process with SIGPIPE.
      ssize_t N = ::send(Fd, P + Sent, Len - Sent, MSG_NOSIGNAL);
      if (N > 0) {
        Sent += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    return true;
  };
  return SendAll(reinterpret_cast<const char *>(Header), sizeof Header) &&
         SendAll(Payload.data(), Payload.size());
}

//===----------------------------------------------------------------------===//
// Request / response payloads
//===----------------------------------------------------------------------===//

bool dra::parseSchemeName(const std::string &Name, Scheme &Out) {
  if (Name == "baseline")
    Out = Scheme::Baseline;
  else if (Name == "ospill")
    Out = Scheme::OSpill;
  else if (Name == "remap")
    Out = Scheme::Remap;
  else if (Name == "select")
    Out = Scheme::Select;
  else if (Name == "coalesce")
    Out = Scheme::Coalesce;
  else
    return false;
  return true;
}

PipelineConfig CompileRequest::toConfig() const {
  PipelineConfig C;
  C.S = S;
  C.BaselineK = BaselineK;
  C.Enc.RegN = RegN;
  C.Enc.DiffN = DiffN;
  C.Enc.DiffW = DiffW;
  C.Remap.NumStarts = RemapStarts;
  return C;
}

namespace {

bool setError(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// Parses an unsigned decimal; rejects empty, non-digit, and > 32-bit.
bool parseU32(const std::string &S, uint32_t &Out) {
  if (S.empty() || S.size() > 10)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  if (V > 0xffffffffull)
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

/// Parses an unsigned decimal up to 64 bits (span timestamps/durations in
/// nanoseconds overflow parseU32). Rejects empty, non-digit, overflow.
bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 20)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (0xffffffffffffffffull - Digit) / 10)
      return false;
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

/// Shared header walker: checks the version line, then hands each
/// key=value line to \p OnKey until the terminating `body=<N>` line, and
/// finally slices the N-byte body (trailing bytes are an error).
template <typename KeyFn>
bool parseDocument(const std::string &Payload, const char *Version,
                   KeyFn &&OnKey, std::string &Body, std::string *Err) {
  size_t Pos = 0;
  auto NextLine = [&](std::string &Line) {
    if (Pos >= Payload.size())
      return false;
    size_t Nl = Payload.find('\n', Pos);
    if (Nl == std::string::npos)
      return false; // header lines must be newline-terminated
    Line.assign(Payload, Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  };

  std::string Line;
  if (!NextLine(Line) || Line != Version)
    return setError(Err, std::string("missing '") + Version +
                             "' version tag");
  for (;;) {
    if (!NextLine(Line))
      return setError(Err, "header ended without a body=<N> line");
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos || Eq == 0)
      return setError(Err, "malformed header line '" + Line + "'");
    std::string Key = Line.substr(0, Eq);
    std::string Value = Line.substr(Eq + 1);
    if (Key == "body") {
      uint32_t Len = 0;
      if (!parseU32(Value, Len))
        return setError(Err, "bad body length '" + Value + "'");
      if (Payload.size() - Pos != Len)
        return setError(Err, "body length " + std::to_string(Len) +
                                 " does not match remaining " +
                                 std::to_string(Payload.size() - Pos) +
                                 " byte(s)");
      Body.assign(Payload, Pos, Len);
      return true;
    }
    if (!OnKey(Key, Value, Err))
      return false;
  }
}

} // namespace

/// The wire name of \p S — the dra-batch `--scheme=` vocabulary, NOT
/// schemeName() (which returns the paper's display names, e.g.
/// "remapping" for Scheme::Remap).
const char *dra::wireSchemeName(Scheme S) {
  switch (S) {
  case Scheme::Baseline:
    return "baseline";
  case Scheme::OSpill:
    return "ospill";
  case Scheme::Remap:
    return "remap";
  case Scheme::Select:
    return "select";
  case Scheme::Coalesce:
    return "coalesce";
  }
  return "coalesce";
}

std::string dra::encodeRequest(const CompileRequest &Req) {
  std::string Out = "dra-req-v1\n";
  Out += "scheme=";
  Out += Req.Auto ? "auto" : wireSchemeName(Req.S);
  Out += "\nbaselinek=" + std::to_string(Req.BaselineK);
  Out += "\nregn=" + std::to_string(Req.RegN);
  Out += "\ndiffn=" + std::to_string(Req.DiffN);
  Out += "\ndiffw=" + std::to_string(Req.DiffW);
  Out += "\nremapstarts=" + std::to_string(Req.RemapStarts);
  if (Req.TraceId)
    Out += "\ntraceid=" + traceIdToHex(Req.TraceId);
  Out += "\nbody=" + std::to_string(Req.Body.size()) + "\n";
  Out += Req.Body;
  return Out;
}

bool dra::decodeRequest(const std::string &Payload, CompileRequest &Out,
                        std::string *Err) {
  CompileRequest Req;
  auto OnKey = [&](const std::string &Key, const std::string &Value,
                   std::string *E) {
    if (Key == "scheme") {
      // "auto" delegates scheme choice to the server's portfolio. S
      // keeps its default (Coalesce) so config validation — encoding
      // parameters etc. — applies unchanged.
      if (Value == "auto") {
        Req.Auto = true;
        return true;
      }
      if (!parseSchemeName(Value, Req.S))
        return setError(E, "unknown scheme '" + Value + "'");
      return true;
    }
    if (Key == "traceid") {
      if (!traceIdFromHex(Value, Req.TraceId) || Req.TraceId == 0)
        return setError(E, "bad traceid '" + Value + "'");
      return true;
    }
    uint32_t V = 0;
    if (!parseU32(Value, V))
      return setError(E, "bad value for '" + Key + "'");
    if (Key == "baselinek")
      Req.BaselineK = V;
    else if (Key == "regn")
      Req.RegN = V;
    else if (Key == "diffn")
      Req.DiffN = V;
    else if (Key == "diffw")
      Req.DiffW = V;
    else if (Key == "remapstarts")
      Req.RemapStarts = V;
    else
      return setError(E, "unknown request key '" + Key + "'");
    return true;
  };
  if (!parseDocument(Payload, "dra-req-v1", OnKey, Req.Body, Err))
    return false;
  Out = std::move(Req);
  return true;
}

namespace {

const char *statusNameOf(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::Shed:
    return "shed";
  case ResponseStatus::Error:
    return "error";
  }
  return "error";
}

} // namespace

std::string dra::encodeResponse(const CompileResponse &Resp) {
  std::string Out = "dra-resp-v1\n";
  Out += "status=";
  Out += statusNameOf(Resp.Status);
  Out += "\ntier=" + Resp.Tier;
  if (Resp.TraceId) {
    // The inline span summary: header lines only, never the body, so a
    // traced ok-response body stays byte-identical to an untraced one.
    Out += "\ntraceid=" + traceIdToHex(Resp.TraceId);
    Out += "\npid=" + std::to_string(Resp.ServerPid);
    for (const auto &[Tid, Name] : Resp.ThreadNames)
      Out += "\ntname=" + std::to_string(Tid) + ";" + Name;
    for (const WireSpan &S : Resp.Spans)
      Out += "\nspan=" + std::to_string(S.Tid) + ";" +
             std::to_string(S.Depth) + ";" + std::to_string(S.BeginNs) +
             ";" + std::to_string(S.DurNs) + ";" + S.Name;
  }
  Out += "\nbody=" + std::to_string(Resp.Body.size()) + "\n";
  Out += Resp.Body;
  return Out;
}

namespace {

/// Splits `<tid>;<depth>;<begin_ns>;<dur_ns>;<name>` (name last, so it is
/// the only field allowed to contain ';').
bool parseWireSpan(const std::string &Value, WireSpan &Out) {
  size_t Pos = 0;
  auto NextField = [&](std::string &Field) {
    size_t Semi = Value.find(';', Pos);
    if (Semi == std::string::npos)
      return false;
    Field.assign(Value, Pos, Semi - Pos);
    Pos = Semi + 1;
    return true;
  };
  std::string Tid, Depth, Begin, Dur;
  uint32_t D = 0;
  if (!NextField(Tid) || !NextField(Depth) || !NextField(Begin) ||
      !NextField(Dur))
    return false;
  if (!parseU64(Tid, Out.Tid) || !parseU32(Depth, D) ||
      !parseU64(Begin, Out.BeginNs) || !parseU64(Dur, Out.DurNs))
    return false;
  Out.Depth = D;
  Out.Name.assign(Value, Pos, Value.size() - Pos);
  return !Out.Name.empty();
}

} // namespace

bool dra::decodeResponse(const std::string &Payload, CompileResponse &Out,
                         std::string *Err) {
  CompileResponse Resp;
  bool HaveStatus = false;
  auto OnKey = [&](const std::string &Key, const std::string &Value,
                   std::string *E) {
    if (Key == "status") {
      if (Value == "ok")
        Resp.Status = ResponseStatus::Ok;
      else if (Value == "shed")
        Resp.Status = ResponseStatus::Shed;
      else if (Value == "error")
        Resp.Status = ResponseStatus::Error;
      else
        return setError(E, "unknown status '" + Value + "'");
      HaveStatus = true;
      return true;
    }
    if (Key == "tier") {
      if (Value != "hit_mem" && Value != "hit_disk" && Value != "miss" &&
          Value != "none")
        return setError(E, "unknown tier '" + Value + "'");
      Resp.Tier = Value;
      return true;
    }
    if (Key == "traceid") {
      if (!traceIdFromHex(Value, Resp.TraceId) || Resp.TraceId == 0)
        return setError(E, "bad traceid '" + Value + "'");
      return true;
    }
    if (Key == "pid") {
      if (!parseU64(Value, Resp.ServerPid))
        return setError(E, "bad pid '" + Value + "'");
      return true;
    }
    if (Key == "tname") {
      size_t Semi = Value.find(';');
      uint64_t Tid = 0;
      if (Semi == std::string::npos ||
          !parseU64(Value.substr(0, Semi), Tid))
        return setError(E, "bad tname '" + Value + "'");
      Resp.ThreadNames.emplace_back(Tid, Value.substr(Semi + 1));
      return true;
    }
    if (Key == "span") {
      WireSpan S;
      if (!parseWireSpan(Value, S))
        return setError(E, "bad span '" + Value + "'");
      Resp.Spans.push_back(std::move(S));
      return true;
    }
    return setError(E, "unknown response key '" + Key + "'");
  };
  if (!parseDocument(Payload, "dra-resp-v1", OnKey, Resp.Body, Err))
    return false;
  if (!HaveStatus)
    return setError(Err, "response is missing a status line");
  Out = std::move(Resp);
  return true;
}

//===----------------------------------------------------------------------===//
// Control requests (dra-ctl-v1)
//===----------------------------------------------------------------------===//

bool dra::isCtlPayload(const std::string &Payload) {
  size_t TagLen = std::strlen(CtlVersionTag);
  return Payload.size() > TagLen &&
         Payload.compare(0, TagLen, CtlVersionTag) == 0 &&
         Payload[TagLen] == '\n';
}

std::string dra::encodeCtlRequest(const CtlRequest &Req) {
  std::string Out = std::string(CtlVersionTag) + "\n";
  Out += "cmd=" + Req.Cmd;
  if (Req.Cmd == "recent")
    Out += "\nn=" + std::to_string(Req.RecentN);
  Out += "\nbody=0\n";
  return Out;
}

bool dra::decodeCtlRequest(const std::string &Payload, CtlRequest &Out,
                           std::string *Err) {
  CtlRequest Req;
  bool HaveCmd = false;
  auto OnKey = [&](const std::string &Key, const std::string &Value,
                   std::string *E) {
    if (Key == "cmd") {
      if (Value.empty())
        return setError(E, "empty cmd");
      Req.Cmd = Value;
      HaveCmd = true;
      return true;
    }
    if (Key == "n") {
      uint32_t V = 0;
      if (!parseU32(Value, V) || V == 0)
        return setError(E, "bad value for 'n'");
      Req.RecentN = V;
      return true;
    }
    return setError(E, "unknown control key '" + Key + "'");
  };
  std::string Body;
  if (!parseDocument(Payload, CtlVersionTag, OnKey, Body, Err))
    return false;
  if (!HaveCmd)
    return setError(Err, "control request is missing a cmd line");
  if (!Body.empty())
    return setError(Err, "control requests carry no body");
  Out = std::move(Req);
  return true;
}

//===----------------------------------------------------------------------===//
// Unix-socket helpers
//===----------------------------------------------------------------------===//

namespace {

bool fillSockaddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Err) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return setError(Err, "socket path '" + Path +
                             "' is empty or too long for sockaddr_un");
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

int dra::listenUnixSocket(const std::string &Path, int Backlog,
                          std::string *Err) {
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, Err))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  ::unlink(Path.c_str()); // a stale socket file from a dead server
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0 ||
      ::listen(Fd, Backlog) < 0) {
    setError(Err, "bind/listen '" + Path + "': " + std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int dra::connectUnixSocket(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, Err))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0) {
    setError(Err, "connect '" + Path + "': " + std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool dra::transact(int Fd, const CompileRequest &Req, CompileResponse &Resp,
                   std::string *Err) {
  if (!writeFrame(Fd, encodeRequest(Req)))
    return setError(Err, "send failed");
  std::string Payload;
  FrameStatus St = readFrame(Fd, Payload);
  if (St != FrameStatus::Ok)
    return setError(Err, std::string("response frame: ") +
                             frameStatusName(St));
  return decodeResponse(Payload, Resp, Err);
}

bool dra::transactCtl(int Fd, const CtlRequest &Req, CompileResponse &Resp,
                      std::string *Err) {
  if (!writeFrame(Fd, encodeCtlRequest(Req)))
    return setError(Err, "send failed");
  std::string Payload;
  FrameStatus St = readFrame(Fd, Payload);
  if (St != FrameStatus::Ok)
    return setError(Err, std::string("response frame: ") +
                             frameStatusName(St));
  return decodeResponse(Payload, Resp, Err);
}
