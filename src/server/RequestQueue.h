//===- server/RequestQueue.h - Bounded admission control --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's admission policy: a bounded in-flight counter.
/// A request is *admitted* when fewer than `limit()` requests are between
/// admission and release (queued on the thread pool or compiling); once
/// the bound is reached further requests are *shed* — the server answers
/// `status=shed` immediately instead of queueing without bound, so a
/// burst degrades into fast explicit rejections rather than unbounded
/// memory growth and timeout ambiguity. `drain()` is the graceful-
/// shutdown barrier: it blocks until every admitted request has been
/// released.
///
/// A limit of 0 sheds everything — degenerate in production, load-
/// bearing in tests (deterministic overload).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SERVER_REQUESTQUEUE_H
#define DRA_SERVER_REQUESTQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace dra {

class AdmissionQueue {
public:
  explicit AdmissionQueue(unsigned Limit) : Cap(Limit) {}

  AdmissionQueue(const AdmissionQueue &) = delete;
  AdmissionQueue &operator=(const AdmissionQueue &) = delete;

  /// Admits one request if the in-flight bound allows; otherwise counts a
  /// shed and returns false. Never blocks.
  bool tryAdmit() {
    std::lock_guard<std::mutex> Lock(M);
    if (InFlight >= Cap) {
      ++ShedCount;
      return false;
    }
    ++InFlight;
    ++AdmittedCount;
    return true;
  }

  /// Releases one previously admitted request.
  void release() {
    std::lock_guard<std::mutex> Lock(M);
    if (InFlight > 0)
      --InFlight;
    if (InFlight == 0)
      Empty.notify_all();
  }

  /// Blocks until no admitted request is in flight.
  void drain() {
    std::unique_lock<std::mutex> Lock(M);
    Empty.wait(Lock, [&] { return InFlight == 0; });
  }

  unsigned depth() const {
    std::lock_guard<std::mutex> Lock(M);
    return InFlight;
  }
  unsigned limit() const { return Cap; }

  /// Monotonic totals (exported as server.accepted / server.shed).
  uint64_t admitted() const {
    std::lock_guard<std::mutex> Lock(M);
    return AdmittedCount;
  }
  uint64_t shed() const {
    std::lock_guard<std::mutex> Lock(M);
    return ShedCount;
  }

private:
  mutable std::mutex M;
  std::condition_variable Empty;
  const unsigned Cap;
  unsigned InFlight = 0;
  uint64_t AdmittedCount = 0;
  uint64_t ShedCount = 0;
};

} // namespace dra

#endif // DRA_SERVER_REQUESTQUEUE_H
