//===- server/Protocol.h - Compile-service wire protocol --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between `dra-server` and its clients (`dra-loadgen`,
/// tests). Two layers, both deliberately boring:
///
/// **Framing.** Every message is one frame on a stream socket:
///
///   [4-byte magic "DRAS"] [4-byte little-endian payload length] [payload]
///
/// `readFrame` classifies every way a frame can go wrong — clean EOF at a
/// frame boundary, bad magic (stream desync), an oversize length prefix
/// (rejected *before* any allocation, so a hostile 4 GiB prefix cannot
/// balloon the server), and truncation mid-frame (peer died) — so the
/// connection loop can answer a structured error or drop the connection,
/// never crash.
///
/// **Payloads.** Text documents with a version tag on the first line, in
/// the spirit of the repro and cache file formats:
///
///   dra-req-v1                      dra-resp-v1
///   scheme=coalesce|auto            status=ok|shed|error
///   baselinek=8                     tier=hit_mem|hit_disk|miss|none
///   regn=12                         [traceid=<16 hex>]
///   diffn=8                         [pid=<server pid>]
///   diffw=3                         [tname=<tid>;<name>]...
///   remapstarts=200                 [span=<tid>;<depth>;<begin>;<dur>;<name>]...
///   [traceid=<16 hex>]              body=<N>
///   body=<N>                        <N bytes>
///   <N bytes of .dra function text>
///
/// The `body=<N>` line terminates the header; exactly N payload bytes
/// follow its newline. An `ok` response body is the
/// ResultCache::serializeResult encoding of the PipelineResult — the same
/// canonical byte string the content-addressed cache stores and verifies,
/// so "server response == local recompile" is a byte comparison. A `shed`
/// response (admission control) has an empty body; an `error` response
/// carries the diagnostic as its body.
///
/// **Tracing (optional, off by default).** A request carrying `traceid=`
/// opts into request-scoped tracing: the server echoes the id back and
/// attaches an inline span summary — its pid, `tname=` thread-name lines,
/// and one `span=` line per recorded span (timestamps are absolute
/// steadyClockNs(), durations ns; the name is the last `;`-separated
/// field, so names may contain `;`-free text only on the other fields).
/// The response *body* is byte-identical to the untraced response — all
/// trace data rides in header lines — so `--verify` byte comparison is
/// unaffected. Servers never attach spans unsolicited; old clients never
/// see the new keys.
///
/// **Control documents (`dra-ctl-v1`).** A client can ask the live server
/// for introspection data without compiling anything:
///
///   dra-ctl-v1
///   cmd=stats|recent|health
///   [n=<count>]        (recent: how many records, newest first)
///   body=0
///
/// The server answers with a dra-resp-v1 whose body is a JSON document
/// (see DESIGN.md "Request tracing & flight recorder" for the schemas):
/// `stats` = server/queue/cache/trace totals plus per-tier latency
/// percentiles, `recent` = the flight recorder's last-N request records
/// (full span detail for slow requests), `health` = a liveness probe.
/// Control requests do not count as compile requests and are never shed.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SERVER_PROTOCOL_H
#define DRA_SERVER_PROTOCOL_H

#include "core/Pipeline.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dra {

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

/// Frame magic, on the wire as the bytes "DRAS".
constexpr uint32_t FrameMagic = 0x53415244u; // 'D' 'R' 'A' 'S' little-endian

/// Default cap on a single frame payload (header lengths above the cap
/// are rejected without allocating).
constexpr size_t DefaultMaxFrameBytes = 16u << 20;

/// Everything readFrame can observe on the wire.
enum class FrameStatus : uint8_t {
  Ok,        ///< A complete frame was read into the payload.
  Eof,       ///< Clean close at a frame boundary (no bytes of a new frame).
  BadMagic,  ///< First 4 bytes are not "DRAS": stream desync or garbage.
  Oversize,  ///< Length prefix exceeds the cap; payload not read.
  Truncated, ///< Peer closed mid-frame (header or payload incomplete).
  IoError,   ///< recv/send failed (connection reset, ...).
};

/// Human-readable name of \p S ("ok", "eof", "bad-magic", ...).
const char *frameStatusName(FrameStatus S);

/// Reads one frame from stream socket \p Fd into \p Payload. Retries
/// short reads and EINTR; never throws.
FrameStatus readFrame(int Fd, std::string &Payload,
                      size_t MaxBytes = DefaultMaxFrameBytes);

/// Writes one frame (magic + length + \p Payload) to stream socket \p Fd.
/// Handles partial writes; returns false on any send failure (the peer
/// disconnecting mid-response must not raise SIGPIPE or throw).
bool writeFrame(int Fd, const std::string &Payload);

//===----------------------------------------------------------------------===//
// Request / response payloads
//===----------------------------------------------------------------------===//

/// One compile request: the knobs dra-batch exposes per run, plus the
/// function body in the textual IR syntax.
struct CompileRequest {
  Scheme S = Scheme::Coalesce;
  /// True for `scheme=auto`: the client delegates scheme selection to the
  /// server's portfolio (race or chooser, per --portfolio). S is ignored
  /// on the wire when set. A server running --portfolio=off answers
  /// auto requests with a structured error rather than guessing.
  bool Auto = false;
  unsigned BaselineK = 8;
  unsigned RegN = 12;
  unsigned DiffN = 8;
  unsigned DiffW = 3;
  unsigned RemapStarts = 200;
  /// 0 = untraced (the default). Nonzero opts this request into
  /// request-scoped tracing; the wire form is traceIdToHex.
  uint64_t TraceId = 0;
  std::string Body; ///< Function text (ir/Parser syntax).

  /// The equivalent PipelineConfig (Cache/Metrics left null; the server
  /// wires its own).
  PipelineConfig toConfig() const;
};

enum class ResponseStatus : uint8_t {
  Ok,    ///< Body is the serialized PipelineResult.
  Shed,  ///< Admission control refused the request; retry later.
  Error, ///< Body is a diagnostic message.
};

/// One span of a response's inline trace summary: the wire form of a
/// driver/Trace.h TraceRecord (begin absolute steadyClockNs, duration ns).
struct WireSpan {
  std::string Name;
  uint64_t Tid = 0;
  unsigned Depth = 0;
  uint64_t BeginNs = 0;
  uint64_t DurNs = 0;
};

/// Server response tier labels; also the `tier` label of the server's
/// latency histograms.
struct CompileResponse {
  ResponseStatus Status = ResponseStatus::Error;
  /// "hit_mem" | "hit_disk" | "miss" for ok; "none" otherwise.
  std::string Tier = "none";
  std::string Body;

  /// Inline trace summary, present only when the request carried a
  /// traceid (all default/empty otherwise — the wire bytes are then
  /// identical to a pre-tracing response).
  uint64_t TraceId = 0;
  uint64_t ServerPid = 0;
  std::vector<WireSpan> Spans;
  std::vector<std::pair<uint64_t, std::string>> ThreadNames;
};

/// Parses a scheme name ("baseline"|"ospill"|"remap"|"select"|"coalesce").
bool parseSchemeName(const std::string &Name, Scheme &Out);

/// The wire name of \p S — parseSchemeName's vocabulary, NOT schemeName()
/// (the paper's display names). Also the flight recorder's scheme label.
const char *wireSchemeName(Scheme S);

std::string encodeRequest(const CompileRequest &Req);

/// Strict inverse of encodeRequest: unknown keys, a bad version tag, a
/// missing/oversized body count, or trailing bytes all fail with a
/// diagnostic. Never throws, never crashes on garbage.
bool decodeRequest(const std::string &Payload, CompileRequest &Out,
                   std::string *Err = nullptr);

std::string encodeResponse(const CompileResponse &Resp);

bool decodeResponse(const std::string &Payload, CompileResponse &Out,
                    std::string *Err = nullptr);

//===----------------------------------------------------------------------===//
// Control requests (dra-ctl-v1)
//===----------------------------------------------------------------------===//

constexpr const char *CtlVersionTag = "dra-ctl-v1";

/// One introspection request (see the file comment for the document).
struct CtlRequest {
  std::string Cmd = "health"; ///< "stats" | "recent" | "health".
  unsigned RecentN = 32;      ///< `recent` only: records, newest first.
};

/// True when \p Payload's first line is the dra-ctl-v1 tag — the server's
/// cheap dispatch test, run before any real decode.
bool isCtlPayload(const std::string &Payload);

std::string encodeCtlRequest(const CtlRequest &Req);

/// Strict, like decodeRequest: unknown commands or keys fail. (The
/// command vocabulary is validated by the *server* dispatch, not here, so
/// a future client can probe for commands this build does not know.)
bool decodeCtlRequest(const std::string &Payload, CtlRequest &Out,
                      std::string *Err = nullptr);

//===----------------------------------------------------------------------===//
// Unix-socket helpers
//===----------------------------------------------------------------------===//

/// Binds and listens on a unix stream socket at \p Path (unlinking any
/// stale socket file first). Returns the listening fd, or -1 with a
/// diagnostic in \p Err.
int listenUnixSocket(const std::string &Path, int Backlog,
                     std::string *Err = nullptr);

/// Connects to the unix stream socket at \p Path. Returns the fd, or -1.
int connectUnixSocket(const std::string &Path, std::string *Err = nullptr);

///// Client convenience: one request/response exchange on \p Fd. Returns
/// false (with a diagnostic) on any framing or decode failure.
bool transact(int Fd, const CompileRequest &Req, CompileResponse &Resp,
              std::string *Err = nullptr);

/// Like transact, for a control request. The response body carries the
/// JSON answer (or the diagnostic on status=error).
bool transactCtl(int Fd, const CtlRequest &Req, CompileResponse &Resp,
                 std::string *Err = nullptr);

} // namespace dra

#endif // DRA_SERVER_PROTOCOL_H
