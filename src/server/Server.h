//===- server/Server.h - Compilation-as-a-service daemon core ---*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile service behind `dra-server`: a unix-socket daemon that
/// answers framed CompileRequests (server/Protocol.h) with the same bytes
/// a local compile would produce. Per request:
///
///   decode -> parse + verify the function -> admission control
///     -> ResultCache::lookupTiered (hit_mem | hit_disk)
///     -> on miss: runPipeline on the thread pool, then Cache->store
///     -> respond with ResultCache::serializeResult(result)
///
/// The response body is the cache's canonical serialization — the very
/// byte string `dra-batch` would put in the cache for the same input — so
/// "server == local" is a byte comparison, which dra-loadgen's `--verify`
/// sampling and the parity tests exploit.
///
/// Threading model: one acceptor thread, one thread per connection
/// (connections are long-lived and few; clients multiplex requests over
/// them sequentially), and a shared ThreadPool that bounds actual compile
/// concurrency. The AdmissionQueue bounds *admitted* work independently
/// of connection count: beyond `QueueDepth` in-flight requests the server
/// sheds (`status=shed`) instead of queueing without bound.
///
/// Shutdown (`stop()`, the SIGTERM path) is graceful: stop accepting,
/// half-close every connection for reading (in-flight responses still go
/// out), join the connection threads, drain the admission queue, flush
/// metrics, unlink the socket. No request that was admitted is dropped.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_SERVER_SERVER_H
#define DRA_SERVER_SERVER_H

#include "driver/Metrics.h"
#include "driver/ResultCache.h"
#include "driver/ThreadPool.h"
#include "driver/Trace.h"
#include "server/FlightRecorder.h"
#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "server/ServerMetrics.h"

#include <atomic>
#include <list>
#include <memory>
#include <string>
#include <thread>

namespace dra {

struct ServerOptions {
  std::string SocketPath;
  /// Compile worker threads; 0 picks ThreadPool::defaultWorkerCount().
  unsigned Workers = 0;
  /// Admission bound: maximum requests between admit and release. 0 sheds
  /// every request (useful for overload tests).
  unsigned QueueDepth = 64;
  size_t MaxFrameBytes = DefaultMaxFrameBytes;
  int Backlog = 64;
  /// Shared result cache; null disables caching (every request is a
  /// tier=miss compile).
  ResultCache *Cache = nullptr;
  /// Registry for server.* series and latency histograms; null disables
  /// metrics entirely.
  MetricsRegistry *Metrics = nullptr;
  /// Flight-recorder capacity (last-N request records served by
  /// `dra-ctl-v1 recent`). 0 disables the recorder; per-request span
  /// collection then happens only for requests that send a `traceid=`.
  size_t FlightRecorderSize = 256;
  /// Requests whose total service time reaches this threshold keep full
  /// span detail in the flight recorder and count into
  /// `trace.slow_requests`.
  uint64_t SlowRequestUs = 100000;
  /// How `scheme=auto` requests are served (core/Portfolio.h): Off
  /// answers them with a structured error, Race races the default arm
  /// set, Choose consults PortfolioTable (racing on low confidence or
  /// with no table). Explicit-scheme requests are never affected.
  PortfolioMode Portfolio = PortfolioMode::Off;
  /// Choose mode's trained decision table (borrowed; the caller keeps it
  /// alive for the server's lifetime).
  const DecisionTable *PortfolioTable = nullptr;
  /// Worker threads per portfolio race; 0 = one per arm. Wall-clock only
  /// (results are bit-identical at any value).
  unsigned PortfolioJobs = 0;
};

class CompileServer {
public:
  explicit CompileServer(const ServerOptions &O);
  ~CompileServer(); ///< Calls stop().

  CompileServer(const CompileServer &) = delete;
  CompileServer &operator=(const CompileServer &) = delete;

  /// Binds the socket and starts the acceptor. False (with \p Err) when
  /// the socket cannot be created.
  bool start(std::string *Err = nullptr);

  /// Graceful drain (see file comment). Idempotent; also run by the
  /// destructor.
  void stop();

  bool running() const { return Running.load(); }

  /// Handles one already-read request payload (compile or dra-ctl-v1)
  /// and returns the response. Public so protocol tests can drive the
  /// full compile path without a socket. \p ConnId labels the serving
  /// connection in traces and flight records (0 = no connection).
  CompileResponse handleRequest(const std::string &Payload,
                                uint64_t ConnId = 0);

  /// Snapshots server.* counters/gauges (and the cache's, if wired) into
  /// the registry. Safe to call repeatedly and concurrently with serving —
  /// this is the periodic `--metrics-interval` export.
  void flushMetrics();

  const ServerMetrics &serverMetrics() const { return SM; }
  const AdmissionQueue &queue() const { return Queue; }
  const FlightRecorder &flightRecorder() const { return Recorder; }
  unsigned workerCount() const { return Workers; }

private:
  struct Conn {
    int Fd = -1; ///< -1 once the connection thread has closed it.
    uint64_t Id = 0; ///< 1-based accept order; trace/flight-record label.
    std::thread T;
  };

  void acceptLoop();
  void serveConnection(Conn &Self);
  CompileResponse compileAdmitted(const CompileRequest &Req,
                                  const Function &F, TraceContext *Trace,
                                  double &QueueUs, double &CompileUs);
  CompileResponse handleControl(const std::string &Payload);
  void writeStatsJson(std::ostream &OS) const;
  void writeRecentJson(std::ostream &OS, size_t N) const;

  ServerOptions Opts;
  unsigned Workers;
  AdmissionQueue Queue;
  ServerMetrics SM;
  FlightRecorder Recorder;
  uint64_t StartNs = 0;            ///< start() time, for uptime reporting.
  const uint64_t TraceSeed;        ///< Construction time; salts derived ids.
  std::atomic<uint64_t> TraceSeq{0}; ///< Counter for server-derived ids.
  /// Workers + 1 pool slots: ThreadPool's worker 0 is the submitting
  /// thread, so `Workers` real task threads require Workers + 1.
  std::unique_ptr<ThreadPool> Pool;

  int ListenFd = -1;
  std::thread Acceptor;
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};

  std::mutex ConnMtx;
  std::list<Conn> Conns; ///< Stable references for the per-conn threads.
};

} // namespace dra

#endif // DRA_SERVER_SERVER_H
