//===- adt/IndexSet.h - Dense ordered index set ------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ordered set over a fixed universe [0, N), backed by packed 64-bit
/// membership words (optionally carved from an Arena). Replaces the
/// std::set<RegId> worklists of the IRC core: first() is the minimum
/// element (exactly std::set::begin()), iteration is ascending by index,
/// and insert/erase/contains are O(1) word operations — so the allocator's
/// worklist discipline stays bit-identical while dropping the red-black
/// tree traffic from the hottest loops.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ADT_INDEXSET_H
#define DRA_ADT_INDEXSET_H

#include "adt/Arena.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace dra {

/// Dense ordered set of indices < universe(); see file comment.
class IndexSet {
public:
  static constexpr uint32_t npos = ~uint32_t(0);

  IndexSet() = default;

  /// Heap-backed set over [0, N).
  explicit IndexSet(uint32_t N) { init(N); }

  /// Arena-backed set over [0, N); \p A must outlive the set.
  IndexSet(Arena &A, uint32_t N) { init(A, N); }

  // Copying would alias or dangle the heap-backed Words pointer; moves
  // keep it valid (std::vector moves preserve the buffer address).
  IndexSet(const IndexSet &) = delete;
  IndexSet &operator=(const IndexSet &) = delete;
  IndexSet(IndexSet &&) = default;
  IndexSet &operator=(IndexSet &&) = default;

  void init(uint32_t N) {
    NumBits = N;
    Own.assign(numWords(), 0);
    Words = Own.data();
    Count = 0;
  }

  void init(Arena &A, uint32_t N) {
    NumBits = N;
    Words = A.allocZeroedArray<uint64_t>(numWords());
    Count = 0;
  }

  uint32_t universe() const { return NumBits; }
  uint32_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  bool contains(uint32_t I) const {
    assert(I < NumBits && "index out of universe");
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  /// Inserts \p I; returns true if it was not already present.
  bool insert(uint32_t I) {
    assert(I < NumBits && "index out of universe");
    uint64_t &W = Words[I >> 6];
    uint64_t Bit = uint64_t(1) << (I & 63);
    if (W & Bit)
      return false;
    W |= Bit;
    ++Count;
    return true;
  }

  /// Erases \p I; returns true if it was present.
  bool erase(uint32_t I) {
    assert(I < NumBits && "index out of universe");
    uint64_t &W = Words[I >> 6];
    uint64_t Bit = uint64_t(1) << (I & 63);
    if (!(W & Bit))
      return false;
    W &= ~Bit;
    --Count;
    return true;
  }

  void clear() {
    for (uint32_t W = 0, E = numWords(); W != E; ++W)
      Words[W] = 0;
    Count = 0;
  }

  /// Minimum element (== *std::set::begin()), or npos when empty.
  uint32_t first() const { return Count == 0 ? npos : findNext(0); }

  /// First member >= \p From, or npos.
  uint32_t findNext(uint32_t From) const {
    if (From >= NumBits)
      return npos;
    uint32_t WordIdx = From >> 6;
    uint64_t W = Words[WordIdx] >> (From & 63);
    if (W)
      return From + static_cast<uint32_t>(__builtin_ctzll(W));
    for (uint32_t E = numWords(); ++WordIdx < E;)
      if (Words[WordIdx])
        return (WordIdx << 6) +
               static_cast<uint32_t>(__builtin_ctzll(Words[WordIdx]));
    return npos;
  }

  /// Calls \p Fn(i) for every member, ascending.
  template <typename FnT> void forEach(FnT Fn) const {
    for (uint32_t I = first(); I != npos; I = findNext(I + 1))
      Fn(I);
  }

private:
  uint32_t numWords() const { return (NumBits + 63) / 64; }

  uint64_t *Words = nullptr;
  uint32_t NumBits = 0;
  uint32_t Count = 0;
  std::vector<uint64_t> Own; // backing store when not arena-allocated
};

} // namespace dra

#endif // DRA_ADT_INDEXSET_H
