//===- adt/BitStream.h - LSB-first bit readers/writers ----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian, LSB-first bit stream writer/reader used by the binary
/// instruction emitter: register fields are DiffW bits wide, so sub-byte
/// packing is the whole point of the exercise.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ADT_BITSTREAM_H
#define DRA_ADT_BITSTREAM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dra {

/// Appends bit fields into a growing byte buffer.
class BitWriter {
public:
  /// Writes the low \p Width bits of \p Value (Width in [0, 64]).
  void write(uint64_t Value, unsigned Width);

  /// Bits written so far.
  size_t bitCount() const { return Bits; }

  /// Pads with zero bits up to the next byte boundary.
  void alignToByte();

  /// The buffer (trailing partial byte zero-padded).
  const std::vector<uint8_t> &bytes() const { return Buffer; }

private:
  std::vector<uint8_t> Buffer;
  size_t Bits = 0;
};

/// Reads bit fields back in write order.
class BitReader {
public:
  explicit BitReader(const std::vector<uint8_t> &Buffer) : Buffer(Buffer) {}

  /// Reads \p Width bits (Width in [0, 64]).
  uint64_t read(unsigned Width);

  /// Skips to the next byte boundary.
  void alignToByte();

  /// Bits consumed so far.
  size_t bitPosition() const { return Pos; }

  /// True if fewer than \p Width bits remain.
  bool exhausted(unsigned Width = 1) const {
    return Pos + Width > Buffer.size() * 8;
  }

private:
  const std::vector<uint8_t> &Buffer;
  size_t Pos = 0;
};

} // namespace dra

#endif // DRA_ADT_BITSTREAM_H
