//===- adt/BitStream.cpp - LSB-first bit readers/writers ------------------===//

#include "adt/BitStream.h"

using namespace dra;

void BitWriter::write(uint64_t Value, unsigned Width) {
  assert(Width <= 64 && "field too wide");
  assert((Width == 64 || (Value >> Width) == 0) &&
         "value does not fit the field");
  for (unsigned I = 0; I != Width; ++I) {
    size_t Bit = Bits + I;
    if (Bit / 8 == Buffer.size())
      Buffer.push_back(0);
    if ((Value >> I) & 1)
      Buffer[Bit / 8] |= static_cast<uint8_t>(1u << (Bit % 8));
  }
  Bits += Width;
}

void BitWriter::alignToByte() {
  if (Bits % 8 != 0)
    write(0, static_cast<unsigned>(8 - Bits % 8));
}

uint64_t BitReader::read(unsigned Width) {
  assert(Width <= 64 && "field too wide");
  assert(!exhausted(Width) && "bit stream exhausted");
  uint64_t Value = 0;
  for (unsigned I = 0; I != Width; ++I) {
    size_t Bit = Pos + I;
    if ((Buffer[Bit / 8] >> (Bit % 8)) & 1)
      Value |= uint64_t(1) << I;
  }
  Pos += Width;
  return Value;
}

void BitReader::alignToByte() {
  if (Pos % 8 != 0)
    Pos += 8 - Pos % 8;
}
