//===- adt/Rng.cpp - Deterministic random number generation --------------===//

#include "adt/Rng.h"

using namespace dra;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

uint64_t Rng::taskSeed(uint64_t BaseSeed, uint64_t TaskIndex) {
  // Two SplitMix64 steps over the combined words: adjacent task indices
  // land in unrelated regions of the seed space, so per-task streams do
  // not correlate the way BaseSeed + TaskIndex would.
  uint64_t X = BaseSeed ^ (TaskIndex * 0x9e3779b97f4a7c15ull);
  splitMix64(X);
  return splitMix64(X);
}

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be positive");
  // Rejection sampling over the largest multiple of Bound.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Raw = next();
    if (Raw >= Threshold)
      return Raw % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(
                  nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
}

bool Rng::withChance(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "zero denominator");
  return nextBelow(Den) < Num;
}

double Rng::nextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "negative weight");
    Total += W;
  }
  assert(Total > 0 && "all weights zero");
  double Point = nextDouble() * Total;
  double Acc = 0;
  for (size_t I = 0, E = Weights.size(); I != E; ++I) {
    Acc += Weights[I];
    if (Point < Acc)
      return I;
  }
  // Floating point round-off: return the last positive weight.
  for (size_t I = Weights.size(); I > 0; --I)
    if (Weights[I - 1] > 0)
      return I - 1;
  return 0;
}
