//===- adt/Rng.h - Deterministic random number generation -------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic pseudo-random number generator used by the
/// workload generators and the randomized property tests. We deliberately do
/// not use std::mt19937 so that the bit streams (and therefore the generated
/// benchmark programs) are identical across standard library
/// implementations.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ADT_RNG_H
#define DRA_ADT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dra {

/// SplitMix64-seeded xoshiro256** generator.
///
/// The generator is value-semantic and cheap to copy, which the workload
/// generators use to fork independent deterministic sub-streams.
///
/// Thread-safety audit (parallel driver, src/driver/): an Rng instance
/// holds only its own 256-bit state — there is no global or static stream
/// anywhere in the library — so the rule for parallel code is simply that
/// each task constructs its own generator. `taskSeed`/`forTask` derive a
/// decorrelated per-task seed from (base seed, task index) so the result
/// depends on the task's identity, never on which worker ran it or in
/// what order.
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Mixes \p BaseSeed and \p TaskIndex into an independent stream seed.
  /// Pure function of its arguments: parallel and serial schedules that
  /// agree on task indices agree on every stream.
  static uint64_t taskSeed(uint64_t BaseSeed, uint64_t TaskIndex);

  /// Convenience: a generator seeded with taskSeed(BaseSeed, TaskIndex).
  static Rng forTask(uint64_t BaseSeed, uint64_t TaskIndex) {
    return Rng(taskSeed(BaseSeed, TaskIndex));
  }

  /// Re-initializes the state from \p Seed via SplitMix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling so the distribution is exactly
  /// uniform.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] (inclusive).
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns true with probability \p Num / \p Den.
  bool withChance(uint64_t Num, uint64_t Den);

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

  /// Picks a uniformly random element of \p Items. The vector must be
  /// non-empty.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "cannot pick from an empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Samples an index from the discrete distribution given by non-negative
  /// \p Weights (not necessarily normalized). At least one weight must be
  /// positive.
  size_t pickWeighted(const std::vector<double> &Weights);

  /// Shuffles \p Items in place (Fisher-Yates).
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[nextBelow(I)]);
  }

private:
  uint64_t State[4];
};

} // namespace dra

#endif // DRA_ADT_RNG_H
