//===- adt/BitVector.cpp - Dense bit vector -------------------------------===//

#include "adt/BitVector.h"

#include <bit>

using namespace dra;

void BitVector::resize(size_t NewSize, bool Value) {
  size_t OldSize = NumBits;
  NumBits = NewSize;
  Words.resize((NewSize + 63) / 64, Value ? ~uint64_t(0) : 0);
  if (Value && NewSize > OldSize && OldSize % 64 != 0) {
    // Bits [OldSize, end-of-word) of the previously-last word must be set.
    Words[OldSize / 64] |= ~uint64_t(0) << (OldSize % 64);
  }
  clearPaddingBits();
}

void BitVector::clearPaddingBits() {
  if (NumBits % 64 != 0 && !Words.empty())
    Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
}

size_t BitVector::count() const {
  size_t Total = 0;
  for (uint64_t W : Words)
    Total += static_cast<size_t>(std::popcount(W));
  return Total;
}

bool BitVector::none() const {
  for (uint64_t W : Words)
    if (W != 0)
      return false;
  return true;
}

bool BitVector::anyCommon(const BitVector &Other) const {
  size_t N = std::min(Words.size(), Other.Words.size());
  for (size_t I = 0; I != N; ++I)
    if (Words[I] & Other.Words[I])
      return true;
  return false;
}

bool BitVector::unionWith(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "universe mismatch");
  bool Changed = false;
  for (size_t I = 0, E = Words.size(); I != E; ++I) {
    uint64_t Merged = Words[I] | Other.Words[I];
    Changed |= Merged != Words[I];
    Words[I] = Merged;
  }
  return Changed;
}

void BitVector::intersectWith(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "universe mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= Other.Words[I];
}

void BitVector::subtract(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "universe mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= ~Other.Words[I];
}

size_t BitVector::findNext(size_t From) const {
  if (From >= NumBits)
    return npos;
  size_t WordIdx = From / 64;
  uint64_t Word = Words[WordIdx] & (~uint64_t(0) << (From % 64));
  for (;;) {
    if (Word != 0) {
      size_t Idx = WordIdx * 64 +
                   static_cast<size_t>(std::countr_zero(Word));
      return Idx < NumBits ? Idx : npos;
    }
    if (++WordIdx == Words.size())
      return npos;
    Word = Words[WordIdx];
  }
}

std::vector<uint32_t> BitVector::toVector() const {
  std::vector<uint32_t> Result;
  forEach([&](size_t I) { Result.push_back(static_cast<uint32_t>(I)); });
  return Result;
}
