//===- adt/BitMatrix.h - Packed square bit matrix ----------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A packed N x N bit matrix — (N+63)/64 64-bit words per row — used for
/// constant-time interference-edge membership in the allocator hot core
/// (the structlang BitsetLen/IsBitSet idiom from the related repos).
/// Storage comes from an Arena (one zeroed slab, freed wholesale) or an
/// owned vector. setSym/testSym maintain the symmetric (undirected-edge)
/// view the interference graph needs.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ADT_BITMATRIX_H
#define DRA_ADT_BITMATRIX_H

#include "adt/Arena.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace dra {

/// Packed square bit matrix; see file comment.
class BitMatrix {
public:
  BitMatrix() = default;

  /// Heap-backed N x N matrix, all zero.
  explicit BitMatrix(uint32_t N) { init(N); }

  /// Arena-backed N x N matrix, all zero; \p A must outlive the matrix.
  BitMatrix(Arena &A, uint32_t N) { init(A, N); }

  BitMatrix(const BitMatrix &) = delete;
  BitMatrix &operator=(const BitMatrix &) = delete;
  BitMatrix(BitMatrix &&) = default;
  BitMatrix &operator=(BitMatrix &&) = default;

  void init(uint32_t NewN) {
    N = NewN;
    WordsPerRow = (N + 63) / 64;
    Own.assign(static_cast<size_t>(N) * WordsPerRow, 0);
    Words = Own.data();
  }

  void init(Arena &A, uint32_t NewN) {
    N = NewN;
    WordsPerRow = (N + 63) / 64;
    Words = A.allocZeroedArray<uint64_t>(static_cast<size_t>(N) *
                                         WordsPerRow);
  }

  uint32_t size() const { return N; }

  bool test(uint32_t R, uint32_t C) const {
    assert(R < N && C < N && "bit matrix index out of range");
    return (row(R)[C >> 6] >> (C & 63)) & 1;
  }

  void set(uint32_t R, uint32_t C) {
    assert(R < N && C < N && "bit matrix index out of range");
    row(R)[C >> 6] |= uint64_t(1) << (C & 63);
  }

  /// Sets both (R, C) and (C, R).
  void setSym(uint32_t R, uint32_t C) {
    set(R, C);
    set(C, R);
  }

  /// Row \p R as (N+63)/64 packed words (low bit of word 0 = column 0).
  const uint64_t *row(uint32_t R) const {
    return Words + static_cast<size_t>(R) * WordsPerRow;
  }
  uint64_t *row(uint32_t R) {
    return Words + static_cast<size_t>(R) * WordsPerRow;
  }

  uint32_t wordsPerRow() const { return WordsPerRow; }

  /// Number of set bits in row \p R.
  uint32_t rowCount(uint32_t R) const {
    const uint64_t *W = row(R);
    uint32_t Total = 0;
    for (uint32_t I = 0; I != WordsPerRow; ++I)
      Total += static_cast<uint32_t>(__builtin_popcountll(W[I]));
    return Total;
  }

  /// Calls \p Fn(col) for every set column of row \p R, ascending.
  template <typename FnT> void forEachInRow(uint32_t R, FnT Fn) const {
    const uint64_t *W = row(R);
    for (uint32_t I = 0; I != WordsPerRow; ++I) {
      uint64_t Word = W[I];
      while (Word) {
        uint32_t Bit = static_cast<uint32_t>(__builtin_ctzll(Word));
        Fn((I << 6) + Bit);
        Word &= Word - 1;
      }
    }
  }

private:
  uint64_t *Words = nullptr;
  uint32_t N = 0;
  uint32_t WordsPerRow = 0;
  std::vector<uint64_t> Own; // backing store when not arena-allocated
};

} // namespace dra

#endif // DRA_ADT_BITMATRIX_H
