//===- adt/BitVector.h - Dense bit vector ------------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-universe dense bit set used by the dataflow analyses (liveness)
/// and the interference graph. Word-parallel set algebra keeps the
/// per-iteration cost of the liveness fixpoint low.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ADT_BITVECTOR_H
#define DRA_ADT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dra {

/// Dense bit vector over the universe [0, size()).
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t NumBits, bool Value = false) {
    resize(NumBits, Value);
  }

  size_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks the universe; new bits take \p Value.
  void resize(size_t NewSize, bool Value = false);

  bool test(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  void set(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] |= uint64_t(1) << (Idx % 64);
  }

  void reset(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Number of set bits.
  size_t count() const;

  /// Returns true if no bit is set.
  bool none() const;

  /// Returns true if any bit in common with \p Other is set.
  bool anyCommon(const BitVector &Other) const;

  /// Set union; returns true if this changed. Universes must match.
  bool unionWith(const BitVector &Other);

  /// Set intersection (in place). Universes must match.
  void intersectWith(const BitVector &Other);

  /// Set difference `this -= Other`. Universes must match.
  void subtract(const BitVector &Other);

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Index of the first set bit at or after \p From, or npos.
  size_t findNext(size_t From) const;

  static constexpr size_t npos = ~size_t(0);

  /// Calls \p Fn for every set bit index, ascending.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t I = findNext(0); I != npos; I = findNext(I + 1))
      Fn(I);
  }

  /// Collects the set bits into a vector (ascending).
  std::vector<uint32_t> toVector() const;

  /// Raw packed-word access for word-parallel algorithms (liveness
  /// fixpoint). Writers must keep the padding bits past size() zero.
  uint64_t *words() { return Words.data(); }
  const uint64_t *words() const { return Words.data(); }
  size_t numWords() const { return Words.size(); }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;

  void clearPaddingBits();
};

} // namespace dra

#endif // DRA_ADT_BITVECTOR_H
