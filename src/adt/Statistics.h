//===- adt/Statistics.h - Small descriptive statistics ----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for summarizing experiment measurements: mean, geometric mean,
/// percentiles. Used by the benchmark harnesses when aggregating per-program
/// results into the paper's "average" rows.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ADT_STATISTICS_H
#define DRA_ADT_STATISTICS_H

#include <vector>

namespace dra {

/// Arithmetic mean of \p Values; 0 for an empty input.
double mean(const std::vector<double> &Values);

/// Geometric mean of strictly positive \p Values; 0 for an empty input.
double geomean(const std::vector<double> &Values);

/// Linear-interpolated percentile \p P in [0, 100]; 0 for an empty input.
double percentile(std::vector<double> Values, double P);

/// Sample standard deviation; 0 when fewer than two values.
double stddev(const std::vector<double> &Values);

} // namespace dra

#endif // DRA_ADT_STATISTICS_H
