//===- adt/Statistics.h - Small descriptive statistics ----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for summarizing experiment measurements: mean, geometric mean,
/// percentiles. Used by the benchmark harnesses when aggregating per-program
/// results into the paper's "average" rows.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ADT_STATISTICS_H
#define DRA_ADT_STATISTICS_H

#include <cstddef>
#include <mutex>
#include <vector>

namespace dra {

/// Arithmetic mean of \p Values; 0 for an empty input.
double mean(const std::vector<double> &Values);

/// Geometric mean of strictly positive \p Values; 0 for an empty input.
double geomean(const std::vector<double> &Values);

/// Linear-interpolated percentile \p P in [0, 100]; 0 for an empty input.
double percentile(std::vector<double> Values, double P);

/// Sample standard deviation; 0 when fewer than two values.
double stddev(const std::vector<double> &Values);

/// Race-free sample collector for parallel measurement.
///
/// Thread-safety audit (parallel driver, src/driver/): the free functions
/// above are pure — they share no state and are safe from any thread —
/// but *accumulating* samples from concurrent batch tasks needs a
/// synchronized container. StatAccumulator is that container: `add` may
/// be called from every pool worker simultaneously; the summary accessors
/// take the same lock, so totals are never torn. The stored sample order
/// is scheduling-dependent; summaries (and the sorted copy `samples`
/// returns) are not.
class StatAccumulator {
public:
  StatAccumulator() = default;
  StatAccumulator(const StatAccumulator &Other) : Values(Other.samples()) {}
  StatAccumulator &operator=(const StatAccumulator &Other) {
    if (this != &Other) {
      std::vector<double> Copy = Other.samples();
      std::lock_guard<std::mutex> Lock(Mtx);
      Values = std::move(Copy);
    }
    return *this;
  }

  /// Records one sample. Thread-safe.
  void add(double V) {
    std::lock_guard<std::mutex> Lock(Mtx);
    Values.push_back(V);
  }

  /// Folds another accumulator's samples into this one. Thread-safe.
  void merge(const StatAccumulator &Other) {
    std::vector<double> Theirs = Other.samples();
    std::lock_guard<std::mutex> Lock(Mtx);
    Values.insert(Values.end(), Theirs.begin(), Theirs.end());
  }

  size_t count() const {
    std::lock_guard<std::mutex> Lock(Mtx);
    return Values.size();
  }
  double sum() const {
    std::lock_guard<std::mutex> Lock(Mtx);
    double Total = 0;
    for (double V : Values)
      Total += V;
    return Total;
  }
  double mean() const;

  /// A sorted snapshot, deterministic regardless of insertion order.
  std::vector<double> samples() const;

private:
  mutable std::mutex Mtx;
  std::vector<double> Values;
};

} // namespace dra

#endif // DRA_ADT_STATISTICS_H
