//===- adt/Statistics.cpp - Small descriptive statistics ------------------===//

#include "adt/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dra;

double dra::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double dra::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double dra::percentile(std::vector<double> Values, double P) {
  if (Values.empty())
    return 0;
  assert(P >= 0 && P <= 100 && "percentile out of range");
  std::sort(Values.begin(), Values.end());
  double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1 - Frac) + Values[Hi] * Frac;
}

double StatAccumulator::mean() const {
  return dra::mean(samples());
}

std::vector<double> StatAccumulator::samples() const {
  std::vector<double> Copy;
  {
    std::lock_guard<std::mutex> Lock(Mtx);
    Copy = Values;
  }
  std::sort(Copy.begin(), Copy.end());
  return Copy;
}

double dra::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0;
  double M = mean(Values);
  double Acc = 0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}
