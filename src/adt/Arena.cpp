//===- adt/Arena.cpp - Chunked bump allocator -----------------------------===//

#include "adt/Arena.h"

#include <algorithm>

using namespace dra;

void Arena::addChunk(size_t MinBytes) {
  // Doubling schedule starting at FirstChunkBytes; one oversized request
  // gets its own exact chunk.
  size_t Size = Chunks.empty() ? FirstChunkBytes : Chunks.back().Size * 2;
  Size = std::max(Size, MinBytes);
  Chunk C;
  C.Mem = std::make_unique<char[]>(Size);
  C.Size = Size;
  Cur = C.Mem.get();
  End = Cur + Size;
  Reserved += Size;
  Chunks.push_back(std::move(C));
}

void Arena::reset() {
  if (Chunks.size() > 1) {
    // Coalesce to a single chunk at the high-water mark so the next round
    // bump-allocates the whole working set from one contiguous block.
    size_t Total = Reserved;
    Chunks.clear();
    Reserved = 0;
    addChunk(Total);
  } else if (!Chunks.empty()) {
    Cur = Chunks.back().Mem.get();
    End = Cur + Chunks.back().Size;
  }
  Used = 0;
}
