//===- adt/Arena.h - Chunked bump allocator ----------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator for the allocator hot core. One Arena lives for
/// one pipeline run (or one allocateGraphColoring call); the per-round data
/// structures — interference bit rows, CSR adjacency, worklist membership
/// words — carve their storage out of it and are freed wholesale by
/// reset(). reset() keeps the high-water-mark capacity, so in steady state
/// (spill rounds, batch compilation re-using a pipeline) no round after the
/// first touches the global heap.
///
/// Allocation is pointer-bump only: no per-object headers, no individual
/// deallocation, trivially-destructible element types only.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ADT_ARENA_H
#define DRA_ADT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace dra {

/// Bump allocator over malloc'd chunks; see file comment.
class Arena {
public:
  explicit Arena(size_t FirstChunkBytes = 64 * 1024)
      : FirstChunkBytes(FirstChunkBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align (a power of two).
  void *allocate(size_t Bytes, size_t Align);

  /// Typed array of \p N elements, uninitialized. T must be trivially
  /// destructible (nothing ever runs destructors).
  template <typename T> T *allocArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Typed array of \p N elements, zero-filled.
  template <typename T> T *allocZeroedArray(size_t N) {
    T *P = allocArray<T>(N);
    std::memset(static_cast<void *>(P), 0, N * sizeof(T));
    return P;
  }

  /// Frees everything allocated so far in O(chunks); capacity is retained
  /// (coalesced into one chunk at the high-water mark), so subsequent
  /// allocation of the same working set is heap-free.
  void reset();

  /// Bytes handed out since construction/reset.
  size_t bytesUsed() const { return Used; }

  /// Total chunk capacity currently held.
  size_t bytesReserved() const { return Reserved; }

private:
  struct Chunk {
    std::unique_ptr<char[]> Mem;
    size_t Size = 0;
  };

  void addChunk(size_t MinBytes);

  std::vector<Chunk> Chunks;
  char *Cur = nullptr;  // bump pointer inside Chunks.back()
  char *End = nullptr;  // end of Chunks.back()
  size_t Used = 0;      // bytes handed out (aligned)
  size_t Reserved = 0;  // sum of chunk sizes
  size_t FirstChunkBytes;
};

inline void *Arena::allocate(size_t Bytes, size_t Align) {
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
  uintptr_t Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
  if (Cur == nullptr ||
      Aligned + Bytes > reinterpret_cast<uintptr_t>(End)) {
    addChunk(Bytes + Align);
    P = reinterpret_cast<uintptr_t>(Cur);
    Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
  }
  Cur = reinterpret_cast<char *>(Aligned + Bytes);
  Used += (Aligned + Bytes) - P;
  return reinterpret_cast<void *>(Aligned);
}

} // namespace dra

#endif // DRA_ADT_ARENA_H
