//===- workloads/MiBench.h - MiBench-like benchmark suite -------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ten benchmark programs of the low-end evaluation (Section 10.1).
/// Each is a deterministic synthetic program (see ProgramGen.h) whose
/// profile mimics the register-pressure and control-flow character of the
/// MiBench program it is named after: e.g. `sha` and `susan` are
/// arithmetic-dense with high pressure, `crc32` is a tiny low-pressure
/// loop, `patricia` and `stringsearch` are branchy.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_WORKLOADS_MIBENCH_H
#define DRA_WORKLOADS_MIBENCH_H

#include "ir/Function.h"
#include "workloads/ProgramGen.h"

#include <string>
#include <vector>

namespace dra {

/// Names of the ten benchmark programs, in presentation order.
std::vector<std::string> miBenchNames();

/// The generation profile of benchmark \p Name (asserts on unknown names).
ProgramProfile miBenchProfile(const std::string &Name);

/// Generates benchmark \p Name.
Function miBenchProgram(const std::string &Name);

/// Generates the full suite in presentation order.
std::vector<Function> miBenchSuite();

} // namespace dra

#endif // DRA_WORKLOADS_MIBENCH_H
