//===- workloads/LoopCorpus.cpp - SPEC-like innermost-loop corpus ---------===//

#include "workloads/LoopCorpus.h"

#include "adt/Rng.h"

#include <algorithm>

using namespace dra;

namespace {

/// Size classes roughly matching an integer-benchmark loop population:
/// mostly small reduction loops, a tail of large unrolled/inlined bodies
/// with wide instruction-level parallelism (these are the ones whose
/// register requirement exceeds 32).
struct SizeClass {
  unsigned MinChains, MaxChains;  // Parallel dependence chains.
  unsigned MinLen, MaxLen;        // Ops per chain.
  unsigned RecurrencePct;         // Chance a chain carries a recurrence.
  unsigned MinDist, MaxDist;      // Recurrence distance range.
  unsigned CrossPct;              // Chance of a cross-chain edge per op.
  uint64_t TripMin, TripMax;
  unsigned WeightPct;             // Share of the population.
};

constexpr SizeClass Classes[] = {
    // Small, serial-ish loops: low pressure.
    {2, 4, 2, 4, 70, 1, 1, 25, 80, 500, 56},
    // Medium loops.
    {4, 8, 3, 6, 45, 1, 2, 30, 80, 600, 29},
    // Large, wide loops (aggressively unrolled/inlined/software-pipelined
    // bodies): long-distance recurrences and late cross-chain uses keep
    // values live for several iterations — the high-register-requirement
    // population (roughly the paper's 11%).
    {10, 20, 4, 9, 65, 2, 4, 55, 30, 140, 15},
};

} // namespace

LoopDdg dra::generateLoop(uint64_t Seed, unsigned Index) {
  Rng Random(Seed ^ (0x9e3779b97f4a7c15ull * (Index + 1)));
  LoopDdg L;
  L.Name = "loop" + std::to_string(Index);

  // Pick a size class.
  unsigned Roll = static_cast<unsigned>(Random.nextBelow(100));
  const SizeClass *Cls = &Classes[0];
  unsigned Acc = 0;
  for (const SizeClass &Candidate : Classes) {
    Acc += Candidate.WeightPct;
    if (Roll < Acc) {
      Cls = &Candidate;
      break;
    }
  }

  L.TripCount = static_cast<uint64_t>(
      Random.nextInRange(static_cast<int64_t>(Cls->TripMin),
                         static_cast<int64_t>(Cls->TripMax)));

  unsigned NumChains = static_cast<unsigned>(
      Random.nextInRange(Cls->MinChains, Cls->MaxChains));
  std::vector<std::vector<uint32_t>> Chains(NumChains);

  auto MakeOp = [&]() {
    DdgOp Op;
    unsigned KindRoll = static_cast<unsigned>(Random.nextBelow(100));
    if (KindRoll < 22) {
      Op.Kind = FuKind::Mem; // Load.
      Op.Latency = 2;
    } else if (KindRoll < 36) {
      Op.Kind = FuKind::Mul;
      Op.Latency = 3;
    } else {
      Op.Kind = FuKind::Alu;
      Op.Latency = 1;
    }
    Op.Defines = true;
    L.Ops.push_back(Op);
    return static_cast<uint32_t>(L.Ops.size() - 1);
  };

  for (unsigned Chain = 0; Chain != NumChains; ++Chain) {
    unsigned Len =
        static_cast<unsigned>(Random.nextInRange(Cls->MinLen, Cls->MaxLen));
    for (unsigned Pos = 0; Pos != Len; ++Pos) {
      uint32_t Op = MakeOp();
      Chains[Chain].push_back(Op);
      if (Pos != 0) {
        uint32_t Prev = Chains[Chain][Pos - 1];
        L.Edges.push_back(
            {Prev, Op, L.Ops[Prev].Latency, 0, /*IsData=*/true});
      }
    }
    // Loop-carried recurrence: chain tail feeds chain head a few
    // iterations later. Larger distances keep the tail value live for
    // Distance * II cycles, which is what drives MaxLive past the
    // architected registers on the wide loops.
    if (Chains[Chain].size() >= 2 &&
        Random.withChance(Cls->RecurrencePct, 100)) {
      uint32_t Tail = Chains[Chain].back();
      uint32_t Head = Chains[Chain].front();
      unsigned Distance = static_cast<unsigned>(
          Random.nextInRange(Cls->MinDist, Cls->MaxDist));
      L.Edges.push_back(
          {Tail, Head, L.Ops[Tail].Latency, Distance, /*IsData=*/true});
    }
  }

  // Cross-chain data edges (value reuse between chains) — these lengthen
  // lifetimes, which is what drives the register requirement up on the
  // wide loops.
  for (unsigned Chain = 0; Chain != NumChains; ++Chain) {
    for (uint32_t Op : Chains[Chain]) {
      if (!Random.withChance(Cls->CrossPct, 100))
        continue;
      unsigned Other =
          static_cast<unsigned>(Random.nextBelow(NumChains));
      if (Other == Chain || Chains[Other].empty())
        continue;
      uint32_t Src = Random.pick(Chains[Other]);
      if (Src == Op)
        continue;
      // Same-iteration data edge; keep the graph acyclic within an
      // iteration by always flowing from the lower index.
      uint32_t From = std::min(Src, Op), To = std::max(Src, Op);
      L.Edges.push_back(
          {From, To, L.Ops[From].Latency, 0, /*IsData=*/true});
    }
  }

  // A store to close the loop body (keeps at least one Mem writer).
  uint32_t StoreIdx = static_cast<uint32_t>(L.Ops.size());
  DdgOp Store;
  Store.Kind = FuKind::Mem;
  Store.Latency = 1;
  Store.Defines = false;
  L.Ops.push_back(Store);
  uint32_t StoredValue = Chains[Random.nextBelow(NumChains)].back();
  L.Edges.push_back(
      {StoredValue, StoreIdx, L.Ops[StoredValue].Latency, 0, true});

  return L;
}

std::vector<LoopDdg> dra::generateLoopCorpus(const LoopCorpusOptions &O) {
  std::vector<LoopDdg> Corpus;
  Corpus.reserve(O.Count);
  for (unsigned I = 0; I != O.Count; ++I)
    Corpus.push_back(generateLoop(O.Seed, I));
  return Corpus;
}
