//===- workloads/ProgramGen.cpp - Synthetic program generator -------------===//

#include "workloads/ProgramGen.h"

#include "adt/Rng.h"
#include "ir/IRBuilder.h"

#include <algorithm>

using namespace dra;

namespace {

/// Recursive structured-program emitter.
class Emitter {
public:
  Emitter(Function &F, IRBuilder &B, Rng &Random, const ProgramProfile &P)
      : F(F), B(B), Random(Random), P(P) {}

  /// Creates the accumulator pool in the current block.
  void initPool() {
    for (unsigned I = 0; I != P.PressureVars; ++I)
      Pool.push_back(B.createMovImm(Random.nextInRange(1, 1000)));
  }

  /// Emits \p Count statements at loop depth \p Depth. On return the
  /// builder sits in an open (unterminated) block.
  void emitStatements(unsigned Count, unsigned Depth) {
    for (unsigned I = 0; I != Count; ++I)
      emitStatement(Depth);
  }

  /// Folds the pool into a single register (used for the final result).
  RegId foldPool() {
    RegId Acc = Pool[0];
    for (size_t I = 1; I != Pool.size(); ++I)
      Acc = B.createBin(Opcode::Xor, Acc, Pool[I]);
    return Acc;
  }

private:
  Function &F;
  IRBuilder &B;
  Rng &Random;
  const ProgramProfile &P;
  std::vector<RegId> Pool;
  unsigned LoopDepth = 0;
  unsigned FocusIdx = 0;

  /// Real code exhibits strong value locality: a statement works on the
  /// couple of variables the surrounding statements work on. The focus
  /// index models that — most pool accesses hit the focus variable or its
  /// neighbor, and the focus drifts occasionally. Without it every pool
  /// pair becomes a (symmetric) adjacency edge, which makes the
  /// differential-encoding problem artificially dense.
  void maybeShiftFocus() {
    if (Random.withChance(22, 100))
      FocusIdx = static_cast<unsigned>(Random.nextBelow(Pool.size()));
  }

  RegId randomPoolVar() {
    unsigned Roll = static_cast<unsigned>(Random.nextBelow(100));
    if (Roll < 55)
      return Pool[FocusIdx];
    if (Roll < 80)
      return Pool[(FocusIdx + 1) % Pool.size()];
    return Random.pick(Pool);
  }

  /// One subexpression reading \p Operand (plus possibly a second pool
  /// value); returns the temporary holding the result.
  RegId emitPart(RegId Operand) {
    switch (Random.nextBelow(5)) {
    case 0:
      return B.createBin(Opcode::Add, Operand, randomPoolVar());
    case 1:
      return B.createBin(Opcode::Mul, Operand, randomPoolVar());
    case 2:
      return B.createBinImm(Opcode::AddI, Operand,
                            Random.nextInRange(-9, 9));
    case 3:
      return B.createBin(Opcode::Xor, Operand, randomPoolVar());
    default:
      return B.createBinImm(Opcode::ShrI, Operand,
                            Random.nextInRange(1, 5));
    }
  }

  /// An expression over \p Width subexpressions. Normal expressions fold
  /// each part into the accumulator immediately (short chains, at most two
  /// temporaries live — the common shape in compiled code). Hot
  /// expressions (\p KeepPartsLive) materialize every part before folding,
  /// creating the localized register-pressure spike the paper's
  /// high-pressure regions exhibit; their parts read *rotating* pool
  /// variables so the access chains stay directional (real wide
  /// expressions read many different values, not one value repeatedly).
  RegId emitExpression(unsigned Width, bool KeepPartsLive) {
    if (!KeepPartsLive) {
      RegId Acc = emitPart(randomPoolVar());
      for (unsigned W = 1; W < Width; ++W) {
        RegId Part = emitPart(randomPoolVar());
        Opcode Op = Random.withChance(1, 2) ? Opcode::Add : Opcode::Xor;
        Acc = B.createBin(Op, Acc, Part);
      }
      return Acc;
    }
    std::vector<RegId> Parts;
    for (unsigned W = 0; W != Width; ++W)
      Parts.push_back(
          emitPart(Pool[(FocusIdx + W) % Pool.size()]));
    RegId Acc = Parts[0];
    for (size_t I = 1; I != Parts.size(); ++I) {
      Opcode Op = Random.withChance(1, 2) ? Opcode::Add : Opcode::Xor;
      Acc = B.createBin(Op, Acc, Parts[I]);
    }
    return Acc;
  }

  void emitAssign() {
    bool Hot = Random.withChance(P.HotPct, 100);
    unsigned Width = Hot ? P.HotWidth : P.ExprWidth;
    RegId Value = emitExpression(Width, Hot);
    // Keep accumulators bounded so multiplications do not overflow into
    // degenerate values: mask to 20 bits. The masked temporary dies at the
    // final move, which makes the move a genuine coalescing candidate
    // whenever the target's previous value is already dead — the kind of
    // move the optimal-spill pipeline's coalesce stage feeds on.
    RegId Masked = B.createBinImm(Opcode::AndI, Value, (1 << 20) - 1);
    B.createMovTo(randomPoolVar(), Masked);
  }

  void emitMove() {
    RegId Src = randomPoolVar();
    RegId Dst = randomPoolVar();
    if (Src == Dst)
      return;
    B.createMovTo(Dst, Src);
  }

  void emitMemOp(unsigned Mask) {
    RegId Addr = randomPoolVar();
    if (Random.withChance(1, 2)) {
      RegId Base = B.createBinImm(Opcode::AndI, Addr, Mask);
      RegId Loaded = B.createLoad(Base, Random.nextBelow(8));
      B.createBinTo(Opcode::Add, randomPoolVar(), Loaded, randomPoolVar());
    } else {
      RegId Base = B.createBinImm(Opcode::AndI, Addr, Mask);
      B.createStore(Base, Random.nextBelow(8), randomPoolVar());
    }
  }

  void emitIf(unsigned Depth) {
    RegId Cond =
        B.createBin(Opcode::CmpLT, randomPoolVar(), randomPoolVar());
    uint32_t ThenBlock = F.makeBlock();
    uint32_t ElseBlock = F.makeBlock();
    uint32_t JoinBlock = F.makeBlock();
    B.createBr(Cond, ThenBlock, ElseBlock);

    // Nested bodies shrink with depth, keeping the branching process
    // subcritical (a fixed body size with a high IfPct recurses without
    // bound).
    unsigned Body = std::max(1u, P.BodyStatements / (2 + Depth));
    B.setBlock(ThenBlock);
    emitStatements(Body, Depth + 1);
    B.createJmp(JoinBlock);

    B.setBlock(ElseBlock);
    emitStatements(Body, Depth + 1);
    B.createJmp(JoinBlock);

    B.setBlock(JoinBlock);
  }

  void emitLoop(unsigned Depth) {
    int64_t Trip = Random.nextInRange(P.TripMin, P.TripMax);
    RegId Counter = B.createMovImm(Trip);
    uint32_t Body = F.makeBlock();
    uint32_t Exit = F.makeBlock();
    B.createJmp(Body);

    B.setBlock(Body);
    // Saturating subtraction: a profile with BodyStatements < Depth must
    // shrink to the floor of 2, not wrap around to ~4 billion statements.
    unsigned Shrink = std::min(Depth, P.BodyStatements);
    emitStatements(std::max(2u, P.BodyStatements - Shrink), Depth + 1);
    B.createBinImmTo(Opcode::AddI, Counter, Counter, -1);
    B.createBr(Counter, Body, Exit);

    B.setBlock(Exit);
  }

  void emitStatement(unsigned Depth) {
    // Hard bound on structural nesting: loops count against MaxLoopDepth,
    // and the combined loop+if nesting never exceeds MaxStructDepth.
    constexpr unsigned MaxStructDepth = 6;
    maybeShiftFocus();
    unsigned Roll = static_cast<unsigned>(Random.nextBelow(100));
    unsigned Mask = P.MemWords > 8 ? P.MemWords / 2 - 1 : 3;
    if (Roll < P.LoopPct && LoopDepth < P.MaxLoopDepth &&
        Depth < MaxStructDepth) {
      ++LoopDepth;
      emitLoop(Depth);
      --LoopDepth;
      return;
    }
    Roll = static_cast<unsigned>(Random.nextBelow(100));
    if (Roll < P.IfPct && Depth < MaxStructDepth) {
      emitIf(Depth);
      return;
    }
    if (Roll < P.IfPct + P.MemPct) {
      emitMemOp(Mask);
      return;
    }
    if (Roll < P.IfPct + P.MemPct + P.MovePct) {
      emitMove();
      return;
    }
    emitAssign();
  }
};

} // namespace

Function dra::generateProgram(const std::string &Name,
                              const ProgramProfile &P) {
  assert(P.PressureVars >= 2 && P.TripMin >= 1 && P.TripMin <= P.TripMax &&
         "degenerate profile");
  Function F;
  F.Name = Name;
  F.MemWords = P.MemWords;
  Rng Random(P.Seed);

  uint32_t Entry = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);

  Emitter E(F, B, Random, P);
  E.initPool();

  // Implicit outer loop: scales dynamic instruction counts so pipeline
  // simulation is meaningful.
  RegId OuterCounter = B.createMovImm(P.OuterTrip);
  uint32_t OuterBody = F.makeBlock();
  uint32_t OuterExit = F.makeBlock();
  B.createJmp(OuterBody);

  B.setBlock(OuterBody);
  E.emitStatements(P.TopStatements, 0);
  B.createBinImmTo(Opcode::AddI, OuterCounter, OuterCounter, -1);
  B.createBr(OuterCounter, OuterBody, OuterExit);

  B.setBlock(OuterExit);
  RegId Result = E.foldPool();
  B.createStore(B.createMovImm(0), 0, Result);
  B.createRet(Result);

  F.recomputeCFG();
  return F;
}
