//===- workloads/LoopCorpus.h - SPEC-like innermost-loop corpus -*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generator of the 1928 innermost loops used by the high-performance
/// evaluation (Section 10.2). The paper extracted them from SPEC2000int;
/// we synthesize DDGs whose size/parallelism/recurrence distribution is
/// calibrated so that roughly 11% of the loops require more than 32
/// registers after modulo scheduling, and those loops are big enough to
/// account for a large share of total loop cycles — the two statistics the
/// paper reports about its corpus.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_WORKLOADS_LOOPCORPUS_H
#define DRA_WORKLOADS_LOOPCORPUS_H

#include "swp/Ddg.h"

#include <vector>

namespace dra {

/// Corpus parameters.
struct LoopCorpusOptions {
  unsigned Count = 1928;
  uint64_t Seed = 0x10057c0de;
};

/// One synthesized loop DDG. Deterministic in (Options.Seed, Index).
LoopDdg generateLoop(uint64_t Seed, unsigned Index);

/// The full corpus.
std::vector<LoopDdg> generateLoopCorpus(const LoopCorpusOptions &O = {});

} // namespace dra

#endif // DRA_WORKLOADS_LOOPCORPUS_H
