//===- workloads/ProgramGen.h - Synthetic program generator -----*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of structured, executable IR programs. It is
/// the stand-in for the paper's MiBench binaries (see DESIGN.md): programs
/// are built from nested counted loops, if/else regions, expression DAGs
/// over a pool of long-lived accumulator variables, array traffic and
/// register-to-register moves. The knobs control exactly the properties
/// the paper's evaluation depends on: register pressure (spills), loop
/// nesting (dynamic weight of spill code) and code shape (adjacency-graph
/// structure).
///
/// Every generated program terminates and is memory-safe, so it can be run
/// end-to-end by the interpreter and the pipeline simulators.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_WORKLOADS_PROGRAMGEN_H
#define DRA_WORKLOADS_PROGRAMGEN_H

#include "ir/Function.h"

#include <cstdint>
#include <string>

namespace dra {

/// Shape parameters for one synthetic program.
struct ProgramProfile {
  uint64_t Seed = 1;
  /// Long-lived accumulator variables (live across most of the program).
  unsigned PressureVars = 6;
  /// Statements in the outer body.
  unsigned TopStatements = 14;
  /// Maximum loop-nesting depth below the implicit outer loop.
  unsigned MaxLoopDepth = 2;
  /// Statements per nested loop/if body.
  unsigned BodyStatements = 8;
  /// Independent subexpressions combined per assignment (drives peak
  /// pressure from short-lived temporaries).
  unsigned ExprWidth = 3;
  /// Percent of assignments that are "hot": their expression uses HotWidth
  /// parallel subexpressions, creating localized pressure spikes. These
  /// regions are what still spills with RegN = 12 — the paper's programs
  /// have exactly this heterogeneity (most code fits, some regions do
  /// not).
  unsigned HotPct = 8;
  unsigned HotWidth = 9;
  /// Trip count range for counted loops.
  unsigned TripMin = 4;
  unsigned TripMax = 10;
  /// Trip count of the implicit outer loop (scales dynamic instructions).
  unsigned OuterTrip = 10;
  /// Data array words.
  unsigned MemWords = 256;
  /// Per-statement probabilities (percent): loop, if, memory op, move.
  unsigned LoopPct = 22;
  unsigned IfPct = 18;
  unsigned MemPct = 22;
  unsigned MovePct = 12;
};

/// Generates one program. The result passes verifyFunction and terminates
/// under the interpreter.
Function generateProgram(const std::string &Name, const ProgramProfile &P);

} // namespace dra

#endif // DRA_WORKLOADS_PROGRAMGEN_H
