//===- workloads/MiBench.cpp - MiBench-like benchmark suite ---------------===//

#include "workloads/MiBench.h"

#include <cassert>

using namespace dra;

std::vector<std::string> dra::miBenchNames() {
  return {"basicmath", "bitcount", "qsort",        "susan", "jpeg",
          "dijkstra",  "patricia", "stringsearch", "sha",   "crc32"};
}

ProgramProfile dra::miBenchProfile(const std::string &Name) {
  ProgramProfile P;
  if (Name == "basicmath") {
    P.Seed = 0xba51c;
    P.PressureVars = 6;
    P.TopStatements = 18;
    P.ExprWidth = 3;
    P.HotPct = 8;
    P.HotWidth = 9;
    P.LoopPct = 20;
    P.MemPct = 12;
  } else if (Name == "bitcount") {
    P.Seed = 0xb17c0;
    P.PressureVars = 5;
    P.TopStatements = 14;
    P.ExprWidth = 3;
    P.HotPct = 7;
    P.HotWidth = 8;
    P.MaxLoopDepth = 3;
    P.LoopPct = 30;
    P.MemPct = 8;
    P.IfPct = 6;
  } else if (Name == "qsort") {
    P.Seed = 0x4507;
    P.PressureVars = 6;
    P.TopStatements = 16;
    P.ExprWidth = 2;
    P.HotPct = 6;
    P.HotWidth = 8;
    P.MemPct = 34;
    P.IfPct = 14;
    P.LoopPct = 18;
  } else if (Name == "susan") {
    P.Seed = 0x5005a;
    P.PressureVars = 7;
    P.TopStatements = 18;
    P.ExprWidth = 4;
    P.HotPct = 12;
    P.HotWidth = 10;
    P.MaxLoopDepth = 3;
    P.LoopPct = 26;
    P.MemPct = 20;
  } else if (Name == "jpeg") {
    P.Seed = 0x77e6;
    P.PressureVars = 7;
    P.TopStatements = 20;
    P.ExprWidth = 3;
    P.HotPct = 11;
    P.HotWidth = 10;
    P.MemPct = 26;
    P.LoopPct = 22;
  } else if (Name == "dijkstra") {
    P.Seed = 0xd177;
    P.PressureVars = 6;
    P.TopStatements = 16;
    P.ExprWidth = 2;
    P.HotPct = 6;
    P.HotWidth = 8;
    P.MemPct = 30;
    P.IfPct = 16;
  } else if (Name == "patricia") {
    P.Seed = 0xa771c;
    P.PressureVars = 5;
    P.TopStatements = 17;
    P.ExprWidth = 2;
    P.HotPct = 5;
    P.HotWidth = 7;
    P.IfPct = 24;
    P.MemPct = 22;
    P.LoopPct = 14;
  } else if (Name == "stringsearch") {
    P.Seed = 0x5717;
    P.PressureVars = 5;
    P.TopStatements = 15;
    P.ExprWidth = 2;
    P.HotPct = 4;
    P.HotWidth = 7;
    P.IfPct = 20;
    P.MemPct = 24;
    P.LoopPct = 18;
  } else if (Name == "sha") {
    P.Seed = 0x51a5;
    P.PressureVars = 7;
    P.TopStatements = 19;
    P.ExprWidth = 4;
    P.HotPct = 14;
    P.HotWidth = 11;
    P.LoopPct = 24;
    P.MemPct = 14;
    P.MovePct = 16;
  } else if (Name == "crc32") {
    P.Seed = 0xc3c32;
    P.PressureVars = 4;
    P.TopStatements = 12;
    P.ExprWidth = 2;
    P.HotPct = 3;
    P.HotWidth = 6;
    P.LoopPct = 28;
    P.MemPct = 18;
    P.IfPct = 6;
  } else {
    assert(false && "unknown MiBench-like benchmark name");
  }
  return P;
}

Function dra::miBenchProgram(const std::string &Name) {
  return generateProgram(Name, miBenchProfile(Name));
}

std::vector<Function> dra::miBenchSuite() {
  std::vector<Function> Suite;
  for (const std::string &Name : miBenchNames())
    Suite.push_back(miBenchProgram(Name));
  return Suite;
}
