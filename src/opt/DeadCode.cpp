//===- opt/DeadCode.cpp - Dead code elimination ----------------------------===//

#include "opt/DeadCode.h"

#include "analysis/Liveness.h"

using namespace dra;

namespace {

/// True if \p I can be deleted when its result is dead.
bool isPure(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Store:
  case Opcode::SpillSt:
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::SetLastReg:
    return false;
  case Opcode::Load:
  case Opcode::SpillLd:
    // Loads have no side effects in this IR (no traps, wrapped
    // addressing), so a dead load is deletable.
    return true;
  default:
    return true;
  }
}

} // namespace

size_t dra::eliminateDeadCode(Function &F) {
  size_t Deleted = 0;
  for (;;) {
    F.recomputeCFG();
    Liveness LV = Liveness::compute(F);
    size_t DeletedThisRound = 0;
    for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
         ++B) {
      std::vector<uint8_t> Dead(F.Blocks[B].Insts.size(), 0);
      LV.forEachInstBackward(
          F, B, [&](size_t Idx, const BitVector &LiveAfter) {
            const Instruction &I = F.Blocks[B].Insts[Idx];
            RegId Def = I.def();
            if (Def != NoReg && !LiveAfter.test(Def) && isPure(I))
              Dead[Idx] = 1;
          });
      std::vector<Instruction> Kept;
      Kept.reserve(F.Blocks[B].Insts.size());
      for (size_t Idx = 0; Idx != F.Blocks[B].Insts.size(); ++Idx) {
        if (Dead[Idx]) {
          ++DeletedThisRound;
          continue;
        }
        Kept.push_back(F.Blocks[B].Insts[Idx]);
      }
      F.Blocks[B].Insts = std::move(Kept);
    }
    Deleted += DeletedThisRound;
    if (DeletedThisRound == 0)
      break;
  }
  F.recomputeCFG();
  return Deleted;
}
