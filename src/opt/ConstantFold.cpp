//===- opt/ConstantFold.cpp - Constant folding/propagation -----------------===//

#include "opt/ConstantFold.h"

#include <optional>
#include <unordered_map>

using namespace dra;

namespace {

/// Exact evaluation of a two-operand opcode, mirroring the interpreter's
/// total semantics (wrapping shifts, zero-result division).
std::optional<int64_t> evalBinary(Opcode Op, int64_t A, int64_t B) {
  auto Shift = [](int64_t Amount) { return Amount & 63; };
  switch (Op) {
  case Opcode::Add:
  case Opcode::AddI:
    return A + B;
  case Opcode::Sub:
    return A - B;
  case Opcode::Mul:
  case Opcode::MulI:
    return A * B;
  case Opcode::DivS:
    return B == 0 || (A == INT64_MIN && B == -1) ? 0 : A / B;
  case Opcode::Rem:
    return B == 0 || (A == INT64_MIN && B == -1) ? 0 : A % B;
  case Opcode::And:
  case Opcode::AndI:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
  case Opcode::XorI:
    return A ^ B;
  case Opcode::Shl:
  case Opcode::ShlI:
    return static_cast<int64_t>(static_cast<uint64_t>(A) << Shift(B));
  case Opcode::Shr:
  case Opcode::ShrI:
    return static_cast<int64_t>(static_cast<uint64_t>(A) >> Shift(B));
  case Opcode::CmpEQ:
    return A == B;
  case Opcode::CmpNE:
    return A != B;
  case Opcode::CmpLT:
    return A < B;
  case Opcode::CmpLE:
    return A <= B;
  default:
    return std::nullopt;
  }
}

bool isImmediateForm(Opcode Op) {
  switch (Op) {
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
    return true;
  default:
    return false;
  }
}

} // namespace

ConstantFoldStats dra::foldConstants(Function &F) {
  ConstantFoldStats Stats;
  for (BasicBlock &BB : F.Blocks) {
    std::unordered_map<RegId, int64_t> Known;
    for (Instruction &I : BB.Insts) {
      auto Lookup = [&](RegId R) -> std::optional<int64_t> {
        auto It = Known.find(R);
        return It == Known.end() ? std::nullopt
                                 : std::optional<int64_t>(It->second);
      };

      // Fold a conditional branch on a known condition.
      if (I.Op == Opcode::Br) {
        if (auto Cond = Lookup(I.Src1)) {
          uint32_t Target = *Cond != 0 ? I.Target0 : I.Target1;
          Instruction Jmp;
          Jmp.Op = Opcode::Jmp;
          Jmp.Target0 = Target;
          I = Jmp;
          ++Stats.BranchesFolded;
        }
        continue;
      }

      RegId Def = I.def();
      std::optional<int64_t> Result;
      if (I.Op == Opcode::MovI) {
        Result = I.Imm;
      } else if (I.Op == Opcode::Mov) {
        Result = Lookup(I.Src1);
      } else if (isImmediateForm(I.Op)) {
        if (auto A = Lookup(I.Src1))
          Result = evalBinary(I.Op, *A, I.Imm);
      } else if (Def != NoReg && I.numRegFields() == 3) {
        auto A = Lookup(I.Src1);
        auto B = Lookup(I.Src2);
        if (A && B)
          Result = evalBinary(I.Op, *A, *B);
      }

      if (Def != NoReg) {
        if (Result) {
          if (I.Op != Opcode::MovI) {
            Instruction Mov;
            Mov.Op = Opcode::MovI;
            Mov.Dst = Def;
            Mov.Imm = *Result;
            I = Mov;
            ++Stats.InstsFolded;
          }
          Known[Def] = *Result;
        } else {
          Known.erase(Def);
        }
      }
    }
  }
  F.recomputeCFG();
  return Stats;
}
