//===- opt/ConstantFold.h - Constant folding/propagation --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local constant propagation and folding: within each block, track
/// registers holding known constants (seeded by MovI), evaluate arithmetic
/// whose operands are all known using the interpreter's exact semantics,
/// and rewrite foldable instructions to MovI. Conditional branches on a
/// known condition fold to jumps. Purely local (no dataflow join), so the
/// analysis is trivially sound; combine with simplifyCfg() and
/// eliminateDeadCode() for a classic cleanup pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_OPT_CONSTANTFOLD_H
#define DRA_OPT_CONSTANTFOLD_H

#include "ir/Function.h"

namespace dra {

/// Folding statistics.
struct ConstantFoldStats {
  size_t InstsFolded = 0;
  size_t BranchesFolded = 0;
};

/// Folds constants in \p F in place.
ConstantFoldStats foldConstants(Function &F);

} // namespace dra

#endif // DRA_OPT_CONSTANTFOLD_H
