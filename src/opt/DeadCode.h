//===- opt/DeadCode.h - Dead code elimination --------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic liveness-based dead code elimination for the reproduction IR:
/// an instruction is removed when it defines a register that is not live
/// after it and it has no side effects (stores, spill stores and
/// terminators are always kept; set_last_reg is decode-relevant and kept).
/// Iterates to a fixpoint because removing one dead definition can kill
/// its operands' last uses.
///
/// The pass is deliberately *not* part of the benchmark pipelines: the
/// evaluation workloads are calibrated with their dead fraction included
/// (as real compiler output would be after -O2, close to none — the
/// generator produces very little). It is exposed for the dra-opt tool and
/// for users building their own pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_OPT_DEADCODE_H
#define DRA_OPT_DEADCODE_H

#include "ir/Function.h"

namespace dra {

/// Removes dead pure instructions from \p F. Returns the number of
/// instructions deleted (across all fixpoint iterations).
size_t eliminateDeadCode(Function &F);

} // namespace dra

#endif // DRA_OPT_DEADCODE_H
