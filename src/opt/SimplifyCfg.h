//===- opt/SimplifyCfg.h - CFG simplification --------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Straight-line CFG cleanup: merges a block into its unique predecessor
/// when that predecessor ends in an unconditional jump to it (classic
/// block merging), folds conditional branches whose two targets coincide
/// into jumps, and removes unreachable blocks. Larger blocks help the
/// differential encoder directly — every merged edge is one fewer
/// potential join repair — so the pass is also an interesting knob for
/// encoding experiments, though the calibrated benchmarks run without it.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_OPT_SIMPLIFYCFG_H
#define DRA_OPT_SIMPLIFYCFG_H

#include "ir/Function.h"

namespace dra {

/// Statistics of one simplification run.
struct SimplifyCfgStats {
  size_t BlocksMerged = 0;
  size_t BranchesFolded = 0;
  size_t UnreachableRemoved = 0;
};

/// Simplifies \p F in place to a fixpoint. Block indices are compacted;
/// all branch targets are rewritten accordingly.
SimplifyCfgStats simplifyCfg(Function &F);

} // namespace dra

#endif // DRA_OPT_SIMPLIFYCFG_H
