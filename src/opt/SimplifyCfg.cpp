//===- opt/SimplifyCfg.cpp - CFG simplification -----------------------------===//

#include "opt/SimplifyCfg.h"

#include <cassert>

using namespace dra;

namespace {

/// Removes blocks unreachable from the entry; compacts indices. Returns
/// the number of blocks removed.
size_t removeUnreachable(Function &F) {
  F.recomputeCFG();
  std::vector<uint8_t> Reachable(F.Blocks.size(), 0);
  std::vector<uint32_t> Work{0};
  Reachable[0] = 1;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : F.Blocks[B].Succs)
      if (!Reachable[S]) {
        Reachable[S] = 1;
        Work.push_back(S);
      }
  }
  std::vector<uint32_t> NewIndex(F.Blocks.size(), NoBlock);
  std::vector<BasicBlock> Kept;
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    if (!Reachable[B])
      continue;
    NewIndex[B] = static_cast<uint32_t>(Kept.size());
    Kept.push_back(std::move(F.Blocks[B]));
  }
  size_t Removed = F.Blocks.size() - Kept.size();
  F.Blocks = std::move(Kept);
  for (BasicBlock &BB : F.Blocks)
    for (Instruction &I : BB.Insts) {
      if (I.Target0 != NoBlock)
        I.Target0 = NewIndex[I.Target0];
      if (I.Target1 != NoBlock)
        I.Target1 = NewIndex[I.Target1];
    }
  F.recomputeCFG();
  return Removed;
}

} // namespace

SimplifyCfgStats dra::simplifyCfg(Function &F) {
  SimplifyCfgStats Stats;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Stats.UnreachableRemoved += removeUnreachable(F);

    // Fold br with identical targets into jmp.
    for (BasicBlock &BB : F.Blocks) {
      Instruction *Term =
          BB.Insts.empty() ? nullptr : &BB.Insts.back();
      if (Term && Term->Op == Opcode::Br && Term->Target0 == Term->Target1) {
        Instruction Jmp;
        Jmp.Op = Opcode::Jmp;
        Jmp.Target0 = Term->Target0;
        *Term = Jmp;
        ++Stats.BranchesFolded;
        Changed = true;
      }
    }
    F.recomputeCFG();

    // Merge B into its unique predecessor P when P ends in `jmp B` and B
    // has no other predecessors (and is not the entry).
    for (uint32_t B = 1; B != F.Blocks.size(); ++B) {
      if (F.Blocks[B].Preds.size() != 1 || F.Blocks[B].Insts.empty())
        continue;
      uint32_t P = F.Blocks[B].Preds[0];
      if (P == B)
        continue;
      const Instruction *Term = F.Blocks[P].terminator();
      if (!Term || Term->Op != Opcode::Jmp || Term->Target0 != B)
        continue;
      // Splice: drop P's jmp, append B's instructions, leave B empty (it
      // becomes unreachable and is collected next round).
      F.Blocks[P].Insts.pop_back();
      F.Blocks[P].Insts.insert(F.Blocks[P].Insts.end(),
                               F.Blocks[B].Insts.begin(),
                               F.Blocks[B].Insts.end());
      // Make B a self-contained unreachable stub so the function stays
      // structurally valid until cleanup.
      F.Blocks[B].Insts.clear();
      Instruction Stub;
      Stub.Op = Opcode::Ret;
      Stub.Src1 = 0;
      F.Blocks[B].Insts.push_back(Stub);
      ++Stats.BlocksMerged;
      Changed = true;
      F.recomputeCFG();
    }
  }
  return Stats;
}
