//===- fuzz/Invariants.cpp - Structural invariant checks ------------------===//

#include "fuzz/Invariants.h"

#include "analysis/Liveness.h"
#include "regalloc/InterferenceGraph.h"

#include <algorithm>
#include <set>

using namespace dra;

namespace {

bool fail(std::string *Why, const std::string &Msg) {
  if (Why)
    *Why = Msg;
  return false;
}

} // namespace

bool dra::functionsIdentical(const Function &A, const Function &B,
                             std::string *Why) {
  if (A.Blocks.size() != B.Blocks.size())
    return fail(Why, "block counts differ: " +
                         std::to_string(A.Blocks.size()) + " vs " +
                         std::to_string(B.Blocks.size()));
  for (size_t Blk = 0; Blk != A.Blocks.size(); ++Blk) {
    const std::vector<Instruction> &IA = A.Blocks[Blk].Insts;
    const std::vector<Instruction> &IB = B.Blocks[Blk].Insts;
    if (IA.size() != IB.size())
      return fail(Why, "bb" + std::to_string(Blk) +
                           " instruction counts differ: " +
                           std::to_string(IA.size()) + " vs " +
                           std::to_string(IB.size()));
    for (size_t I = 0; I != IA.size(); ++I) {
      const Instruction &X = IA[I];
      const Instruction &Y = IB[I];
      if (X.Op != Y.Op || X.Dst != Y.Dst || X.Src1 != Y.Src1 ||
          X.Src2 != Y.Src2 || X.Imm != Y.Imm || X.Target0 != Y.Target0 ||
          X.Target1 != Y.Target1 || X.Aux != Y.Aux)
        return fail(Why, "bb" + std::to_string(Blk) + "[" +
                             std::to_string(I) + "] differs: '" +
                             toString(X) + "' vs '" + toString(Y) + "'");
    }
  }
  return true;
}

bool dra::checkPermutation(const std::vector<RegId> &Perm,
                           const EncodingConfig &C, std::string *Why) {
  if (Perm.size() != C.RegN)
    return fail(Why, "permutation has " + std::to_string(Perm.size()) +
                         " entries for RegN=" + std::to_string(C.RegN));
  std::vector<uint8_t> Seen(C.RegN, 0);
  for (RegId R = 0; R != C.RegN; ++R) {
    RegId To = Perm[R];
    if (To >= C.RegN)
      return fail(Why, "permutation maps r" + std::to_string(R) +
                           " out of range (to " + std::to_string(To) + ")");
    if (Seen[To]++)
      return fail(Why, "permutation is not a bijection: r" +
                           std::to_string(To) + " hit twice");
  }
  for (RegId S : C.SpecialRegs)
    if (Perm[S] != S)
      return fail(Why, "special register r" + std::to_string(S) +
                           " not pinned (maps to r" +
                           std::to_string(Perm[S]) + ")");
  return true;
}

bool dra::checkInterferencePreserved(const Function &Before,
                                     const Function &After,
                                     const std::vector<RegId> &Perm,
                                     std::string *Why) {
  auto EdgeSet = [](const Function &F) {
    Function Copy = F;
    Copy.recomputeCFG();
    Liveness LV = Liveness::compute(Copy);
    InterferenceGraph G = InterferenceGraph::build(Copy, LV);
    std::set<std::pair<RegId, RegId>> Edges;
    for (RegId N = 0; N != G.numNodes(); ++N)
      for (RegId M : G.neighbors(N))
        Edges.insert({std::min(N, M), std::max(N, M)});
    return Edges;
  };
  std::set<std::pair<RegId, RegId>> Pre = EdgeSet(Before);
  std::set<std::pair<RegId, RegId>> Post = EdgeSet(After);

  std::set<std::pair<RegId, RegId>> Mapped;
  for (const auto &[A, B] : Pre) {
    RegId MA = A < Perm.size() ? Perm[A] : A;
    RegId MB = B < Perm.size() ? Perm[B] : B;
    Mapped.insert({std::min(MA, MB), std::max(MA, MB)});
  }
  if (Mapped == Post)
    return true;
  for (const auto &[A, B] : Mapped)
    if (!Post.count({A, B}))
      return fail(Why, "interference edge (r" + std::to_string(A) + ", r" +
                           std::to_string(B) +
                           ") lost by the permutation");
  for (const auto &[A, B] : Post)
    if (!Mapped.count({A, B}))
      return fail(Why, "interference edge (r" + std::to_string(A) + ", r" +
                           std::to_string(B) +
                           ") appeared under the permutation");
  return fail(Why, "interference edge sets differ");
}

bool dra::checkMoveLegality(const Function &F, std::string *Why) {
  for (size_t Blk = 0; Blk != F.Blocks.size(); ++Blk)
    for (size_t I = 0; I != F.Blocks[Blk].Insts.size(); ++I) {
      const Instruction &Inst = F.Blocks[Blk].Insts[I];
      if (Inst.Op == Opcode::Mov && Inst.Dst == Inst.Src1)
        return fail(Why, "identity move survived coalescing at bb" +
                             std::to_string(Blk) + "[" + std::to_string(I) +
                             "]: '" + toString(Inst) + "'");
    }
  return true;
}
