//===- fuzz/Fuzzer.cpp - Randomized differential-testing harness ----------===//

#include "fuzz/Fuzzer.h"

#include "adt/Rng.h"
#include "core/Encoder.h"
#include "driver/ResultCache.h"
#include "frontend/CSourceGen.h"
#include "frontend/Frontend.h"
#include "fuzz/Invariants.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "interp/Interpreter.h"

#include <optional>
#include <utility>

using namespace dra;

const char *dra::injectFaultName(InjectFault F) {
  switch (F) {
  case InjectFault::None:
    return "none";
  case InjectFault::DropJoinRepair:
    return "drop-join";
  case InjectFault::CorruptFieldCode:
    return "corrupt-code";
  case InjectFault::DropDelayedSlr:
    return "drop-delayed";
  }
  assert(false && "unknown fault");
  return "<bad>";
}

bool dra::parseInjectFault(const std::string &Name, InjectFault &Out) {
  for (InjectFault F :
       {InjectFault::None, InjectFault::DropJoinRepair,
        InjectFault::CorruptFieldCode, InjectFault::DropDelayedSlr})
    if (Name == injectFaultName(F)) {
      Out = F;
      return true;
    }
  return false;
}

namespace {

/// The (scheme × encoding) variants the sweep cycles through. Order is
/// part of the tool's contract: a run of caseMatrixSize() consecutive
/// indices covers the whole matrix.
struct ConfigVariant {
  const char *Name;
  EncodingConfig (*Make)();
};

EncodingConfig lowendSrc() { return lowEndConfig(12); }
EncodingConfig lowendDst() {
  EncodingConfig C = lowEndConfig(12);
  C.Order = AccessOrder::DstFirst;
  return C;
}
EncodingConfig lowendSp() {
  EncodingConfig C = lowEndConfig(12);
  C.DiffN = 7; // Reserve one direct code for the special register.
  C.SpecialRegs = {11};
  return C;
}
EncodingConfig vliwSrc() { return vliwConfig(32); }
EncodingConfig vliwDst() {
  EncodingConfig C = vliwConfig(32);
  C.Order = AccessOrder::DstFirst;
  return C;
}
EncodingConfig vliwSp() {
  EncodingConfig C = vliwConfig(32);
  C.DiffN = 30; // Two direct codes reserved.
  C.SpecialRegs = {31, 30};
  return C;
}

const ConfigVariant ConfigVariants[] = {
    {"lowend12-src", lowendSrc}, {"lowend12-dst", lowendDst},
    {"lowend12-sp", lowendSp},   {"vliw32-src", vliwSrc},
    {"vliw32-dst", vliwDst},     {"vliw32-sp", vliwSp},
};

/// The scheme axis: the three differential pipelines, the remap pipeline
/// with its multi-start search sharded over pool workers, a
/// cache-replay arm that recompiles the heaviest pipeline (coalesce)
/// through a warm ResultCache, and a csrc arm whose program comes from
/// the mini-C frontend (its scheme rotates through the three
/// differential pipelines by seed, see caseForIndex). The parallel
/// variant returns bit-identical results to sequential remap by
/// construction — running it under the oracle and the TSan sweep is what
/// guards that construction; likewise "cached == fresh" is the cache's
/// construction invariant and the replay arm is its guard.
struct SchemeVariant {
  Scheme S;
  unsigned RemapJobs;
  const char *Name;
  bool CacheReplay;
  bool CSrc;
  bool Portfolio;
};

const SchemeVariant SchemeVariants[] = {
    {Scheme::Remap, 1, "remap", false, false, false},
    {Scheme::Select, 1, "select", false, false, false},
    {Scheme::Coalesce, 1, "coalesce", false, false, false},
    {Scheme::Remap, 3, "remap-parallel", false, false, false},
    {Scheme::Coalesce, 1, "cache-replay", true, false, false},
    {Scheme::Remap, 1, "csrc", false, true, false},
    // A two-worker race over the default arms; checkProgram additionally
    // recompiles every arm alone and requires the raced winner to match
    // the sequential best exactly (cost, tie-break, bytes).
    {Scheme::Coalesce, 1, "portfolio", false, false, true},
};

constexpr size_t NumSchemeVariants =
    sizeof(SchemeVariants) / sizeof(SchemeVariants[0]);

/// Program shape for this case: every knob drawn from the case's own
/// deterministic stream. Shapes stay small — the sweep's value is breadth
/// (many seeds × the config matrix), not depth of any one program.
ProgramProfile profileFor(uint64_t Seed) {
  Rng R(Seed);
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = static_cast<unsigned>(R.nextInRange(3, 10));
  P.TopStatements = static_cast<unsigned>(R.nextInRange(4, 10));
  P.MaxLoopDepth = static_cast<unsigned>(R.nextInRange(1, 2));
  P.BodyStatements = static_cast<unsigned>(R.nextInRange(3, 7));
  P.ExprWidth = static_cast<unsigned>(R.nextInRange(2, 4));
  P.HotPct = static_cast<unsigned>(R.nextInRange(0, 20));
  P.HotWidth = static_cast<unsigned>(R.nextInRange(6, 12));
  P.TripMin = 2;
  P.TripMax = static_cast<unsigned>(R.nextInRange(3, 5));
  P.OuterTrip = static_cast<unsigned>(R.nextInRange(2, 4));
  P.MemWords = 64;
  P.LoopPct = static_cast<unsigned>(R.nextInRange(12, 30));
  P.IfPct = static_cast<unsigned>(R.nextInRange(10, 25));
  P.MemPct = static_cast<unsigned>(R.nextInRange(10, 30));
  P.MovePct = static_cast<unsigned>(R.nextInRange(5, 25));
  return P;
}

/// Applies the case's deliberate encoder corruption to \p E. Returns true
/// when a corruption site existed (a fault that finds no site leaves the
/// encoding intact and the case passes vacuously).
bool applyFault(EncodedFunction &E, const EncodingConfig &C,
                InjectFault Fault) {
  switch (Fault) {
  case InjectFault::None:
    return true;
  case InjectFault::DropJoinRepair:
  case InjectFault::DropDelayedSlr: {
    bool WantDelayed = Fault == InjectFault::DropDelayedSlr;
    for (size_t B = 0; B != E.Annotated.Blocks.size(); ++B) {
      auto &Insts = E.Annotated.Blocks[B].Insts;
      for (size_t I = 0; I != Insts.size(); ++I)
        if (Insts[I].Op == Opcode::SetLastReg &&
            (Insts[I].Aux != 0) == WantDelayed) {
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(I));
          E.Codes[B].erase(E.Codes[B].begin() +
                           static_cast<ptrdiff_t>(I));
          E.Annotated.recomputeCFG();
          return true;
        }
    }
    return false;
  }
  case InjectFault::CorruptFieldCode: {
    for (auto &BlockCodes : E.Codes)
      for (auto &InstCodes : BlockCodes)
        for (uint8_t &Code : InstCodes)
          // Only difference codes (not reserved special codes), and only
          // flips that stay in difference-code range, so the corruption
          // decodes to a *wrong register* rather than tripping asserts.
          if (Code >= 1 && Code < C.DiffN && (Code ^ 1u) < C.DiffN) {
            Code ^= 1u;
            return true;
          }
    return false;
  }
  }
  return false;
}

/// FNV-1a over the encoded difference-code stream of \p F (re-encoded
/// from its stripped form, as the round-trip checks do). Instruction and
/// block boundaries are folded in so reshuffled streams cannot collide
/// by concatenation.
uint64_t encodedStreamHash(const Function &F, const EncodingConfig &C) {
  EncodedFunction E = encodeFunction(stripSetLastReg(F), C);
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint8_t B) {
    H ^= B;
    H *= 1099511628211ull;
  };
  for (const auto &BlockCodes : E.Codes) {
    Mix(0xfe);
    for (const auto &InstCodes : BlockCodes) {
      Mix(0xff);
      for (uint8_t Code : InstCodes)
        Mix(Code);
    }
  }
  return H;
}

} // namespace

std::string FuzzCase::name() const {
  std::string N = "s" + std::to_string(Index) + "-" +
                  SchemeVariants[Index % NumSchemeVariants].Name;
  N += "-";
  N += ConfigVariants[(Index / NumSchemeVariants) %
                      (sizeof(ConfigVariants) / sizeof(ConfigVariants[0]))]
           .Name;
  if (Fault != InjectFault::None) {
    N += "-fault-";
    N += injectFaultName(Fault);
  }
  return N;
}

unsigned dra::caseMatrixSize() {
  return static_cast<unsigned>(sizeof(ConfigVariants) /
                               sizeof(ConfigVariants[0])) *
         static_cast<unsigned>(NumSchemeVariants);
}

const char *dra::caseVariantName(uint64_t Index) {
  return SchemeVariants[Index % NumSchemeVariants].Name;
}

FuzzCase dra::caseForIndex(uint64_t BaseSeed, uint64_t Index) {
  FuzzCase FC;
  FC.Index = Index;
  FC.Seed = Rng::taskSeed(BaseSeed, Index);
  const SchemeVariant &SV = SchemeVariants[Index % NumSchemeVariants];
  FC.S = SV.S;
  FC.RemapJobs = SV.RemapJobs;
  FC.CacheReplay = SV.CacheReplay;
  if (SV.Portfolio) {
    FC.Portfolio = true;
    FC.PortfolioJobs = 2; // Concurrent arms: the race path under test.
  }
  FC.Enc = ConfigVariants[(Index / NumSchemeVariants) %
                          (sizeof(ConfigVariants) /
                           sizeof(ConfigVariants[0]))]
               .Make();
  FC.Profile = profileFor(FC.Seed);
  if (SV.CSrc) {
    // Frontend-sourced case: generate the mini-C text here so the case
    // stays a pure function of (BaseSeed, Index), and rotate the scheme
    // by seed so all three differential pipelines see frontend-shaped
    // programs (inlined calls, short-circuit CFGs, mem-resident arrays).
    FC.CSrc = true;
    static const Scheme Rotation[3] = {Scheme::Remap, Scheme::Select,
                                       Scheme::Coalesce};
    FC.S = Rotation[FC.Seed % 3];
    FC.CSource = generateCSource(csrcProfileFor(FC.Seed));
  }
  return FC;
}

std::optional<std::string> dra::checkProgram(const Function &P,
                                             const FuzzCase &FC,
                                             uint64_t *DynInsts) {
  std::string Err;
  if (!verifyFunction(P, &Err))
    return "input program invalid: " + Err;

  ExecResult Ref = interpret(P, FC.StepLimit);
  if (DynInsts)
    *DynInsts = Ref.DynInsts;

  PipelineConfig Cfg;
  Cfg.S = FC.S;
  Cfg.Enc = FC.Enc;
  // Breadth over depth: a light remap search keeps per-case cost low
  // without weakening any checked invariant.
  Cfg.Remap.NumStarts = 25;
  Cfg.Remap.Jobs = FC.RemapJobs;
  if (FC.Portfolio) {
    Cfg.Portfolio.Mode = PortfolioMode::Race;
    Cfg.Portfolio.Jobs = FC.PortfolioJobs;
  }
  std::optional<ResultCache> Cache;
  if (FC.CacheReplay) {
    Cache.emplace();
    Cfg.Cache = &*Cache;
  }
  PipelineResult R = runPipeline(P, Cfg);

  if (!verifyFunction(R.F, &Err))
    return "pipeline output invalid: " + Err;

  if (FC.Portfolio) {
    // The race's construction invariant: the committed result is what a
    // sequential sweep of the arms would pick — minimal encodedCost,
    // lowest arm index on ties, identical bytes. Recompile every arm
    // alone and compare; cancellation must never change the outcome.
    std::vector<PortfolioArm> Arms = resolvedPortfolioArms(Cfg.Portfolio);
    uint64_t BestCost = UINT64_MAX;
    size_t BestArm = 0;
    std::optional<PipelineResult> Best;
    for (size_t A = 0; A != Arms.size(); ++A) {
      PipelineConfig AC = Cfg;
      AC.Portfolio = PortfolioConfig();
      AC.S = Arms[A].S;
      if (Arms[A].RemapStarts != 0)
        AC.Remap.NumStarts = Arms[A].RemapStarts;
      PipelineResult AR = runPipeline(P, AC);
      uint64_t Cost = encodedCost(AR);
      if (Cost < BestCost) {
        BestCost = Cost;
        BestArm = A;
        Best = std::move(AR);
      }
    }
    if (encodedCost(R) != BestCost)
      return "portfolio: raced cost " + std::to_string(encodedCost(R)) +
             " != best sequential arm cost " + std::to_string(BestCost) +
             " (arm " + std::to_string(BestArm) + ")";
    std::string Why;
    if (!functionsIdentical(R.F, Best->F, &Why))
      return "portfolio: raced winner differs from sequential arm " +
             std::to_string(BestArm) + ": " + Why;
    if (R.DiffEncoded && encodedStreamHash(R.F, FC.Enc) !=
                             encodedStreamHash(Best->F, FC.Enc))
      return "portfolio: encoded stream differs from sequential arm " +
             std::to_string(BestArm);
  }

  if (FC.CacheReplay) {
    // Recompile through the now-warm cache: the replay must hit, and the
    // replayed function must match the fresh compile bit for bit —
    // structurally and as an encoded difference-code stream.
    PipelineResult Warm = runPipeline(P, Cfg);
    ResultCacheStats CS = Cache->stats();
    if (CS.Hits != 1 || CS.Misses != 1)
      return "cache replay: expected 1 miss + 1 hit, got " +
             std::to_string(CS.Misses) + " miss(es) + " +
             std::to_string(CS.Hits) + " hit(s)";
    std::string Why;
    if (!functionsIdentical(Warm.F, R.F, &Why))
      return "cache replay: warm function differs from cold: " + Why;
    if (R.DiffEncoded &&
        encodedStreamHash(Warm.F, FC.Enc) != encodedStreamHash(R.F, FC.Enc))
      return "cache replay: encoded stream hash differs from cold compile";
  }

  // Allocation legally restructures code (spills, deleted moves), so the
  // end-to-end check is final-state only. The spill code multiplies the
  // dynamic count, hence the wider candidate limit; a reference run that
  // hits its own limit makes the comparison meaningless and is skipped.
  if (!Ref.HitStepLimit) {
    ExecResult Out = interpret(R.F, FC.StepLimit * 4);
    if (Out.HitStepLimit)
      return "pipeline output did not terminate within 4x the reference "
             "step budget";
    if (fingerprint(Out) != fingerprint(Ref))
      return "pipeline changed semantics: fingerprint mismatch (ret " +
             std::to_string(Ref.ReturnValue) + " vs " +
             std::to_string(Out.ReturnValue) + ")";
  }

  if (!R.DiffEncoded)
    return std::nullopt;

  // The differential core: encode -> decode must be the identity on the
  // allocated function, structurally and under the lockstep oracle.
  Function Allocated = stripSetLastReg(R.F);
  EncodedFunction E = encodeFunction(Allocated, FC.Enc);
  applyFault(E, FC.Enc, FC.Fault);

  if (!verifyDecodable(E.Annotated, FC.Enc, &Err))
    return "verifyDecodable rejected the annotated function: " + Err;

  Function Decoded = decodeFunction(E, FC.Enc);
  std::string Why;
  if (!functionsIdentical(stripSetLastReg(Decoded), Allocated, &Why))
    return "decode(encode(F)) != F: " + Why;

  OracleOptions OO;
  OO.StepLimit = FC.StepLimit * 4;
  OracleResult OR = compareLockstep(Allocated, Decoded, OO);
  if (!OR.Match)
    return "lockstep oracle (allocated vs decoded): " + OR.Divergence;

  // Structural invariants.
  if (!R.Remap.Perm.empty() &&
      !checkPermutation(R.Remap.Perm, FC.Enc, &Why))
    return "pipeline remap permutation: " + Why;

  // Interference-preservation probe: remap the allocated function once
  // more and require the interference graph to map exactly through the
  // permutation, with unchanged lockstep behaviour.
  {
    Function Probe = Allocated;
    RemapOptions RO;
    RO.NumStarts = 8;
    RO.Seed = FC.Seed ^ 0x5eedf00dULL;
    RO.Jobs = FC.RemapJobs;
    RemapResult RR = remapFunction(Probe, FC.Enc, RO);
    if (!checkPermutation(RR.Perm, FC.Enc, &Why))
      return "probe remap permutation: " + Why;
    if (!checkInterferencePreserved(Allocated, Probe, RR.Perm, &Why))
      return "interference not preserved by remap: " + Why;
    OracleResult PR = compareLockstep(Allocated, Probe, OO);
    if (!PR.Match)
      return "lockstep oracle (remap probe): " + PR.Divergence;
  }

  // Move legality is a coalescer postcondition; a portfolio case's
  // winner may come from a non-coalescing arm, so the check only applies
  // to a fixed coalesce scheme.
  if (!FC.Portfolio && FC.S == Scheme::Coalesce &&
      !checkMoveLegality(Allocated, &Why))
    return "move legality after coalesce: " + Why;

  return std::nullopt;
}

FuzzCaseResult dra::runFuzzCase(const FuzzCase &FC, size_t MinimizeBudget) {
  FuzzCaseResult Out;
  if (FC.CSrc) {
    // Frontend-sourced case: the compile itself is under test too — a
    // generated program the frontend rejects is a finding, not a skip.
    CcDiag D;
    std::optional<Function> F =
        compileCSource("cs" + std::to_string(FC.Index), FC.CSource, &D);
    if (!F) {
      Out.Ok = false;
      Out.Detail = "frontend rejected generated source: " + D.render();
      return Out;
    }
    std::optional<std::string> Failure =
        checkProgram(*F, FC, &Out.OracleDynInsts);
    Out.Program = std::move(*F);
    if (Failure) {
      // No delta debugging: ddmin mutates IR, but the repro's ground
      // truth for this variant is the embedded source text.
      Out.Ok = false;
      Out.Detail = *Failure;
    }
    return Out;
  }
  Function P = generateProgram("fz" + std::to_string(FC.Index), FC.Profile);
  std::optional<std::string> Failure =
      checkProgram(P, FC, &Out.OracleDynInsts);
  if (!Failure) {
    Out.Program = std::move(P);
    return Out;
  }

  Out.Ok = false;
  Out.Detail = *Failure;
  if (MinimizeBudget == 0) {
    Out.Program = std::move(P);
    return Out;
  }

  // Shrink under "any check still fails" — the classic ddmin predicate.
  FailPredicate Pred = [&FC](const Function &Cand) {
    return checkProgram(Cand, FC).has_value();
  };
  MinimizeResult M = minimizeProgram(P, Pred, MinimizeBudget);
  Out.Program = std::move(M.Reduced);
  Out.MinimizeSteps = M.Steps;
  if (std::optional<std::string> Reduced = checkProgram(Out.Program, FC))
    Out.Detail = *Reduced; // Report the reduced program's failure mode.
  return Out;
}
