//===- fuzz/Minimizer.cpp - Delta-debugging program shrinker --------------===//

#include "fuzz/Minimizer.h"

#include <algorithm>
#include <vector>

using namespace dra;

namespace {

/// Shared budget-aware predicate wrapper: verifies the candidate, counts
/// the invocation, and never runs past the budget.
class Tester {
public:
  Tester(const FailPredicate &StillFails, size_t MaxSteps)
      : StillFails(StillFails), MaxSteps(MaxSteps) {}

  bool exhausted() const { return Steps >= MaxSteps; }
  size_t steps() const { return Steps; }

  /// True when \p Candidate is well-formed and still fails.
  bool stillFails(Function &Candidate) {
    if (exhausted())
      return false;
    Candidate.recomputeCFG();
    if (!verifyFunction(Candidate))
      return false;
    ++Steps;
    return StillFails(Candidate);
  }

private:
  const FailPredicate &StillFails;
  size_t MaxSteps;
  size_t Steps = 0;
};

/// Pass 1: try turning each conditional branch into an unconditional jump.
bool simplifyTerminators(Function &P, Tester &T) {
  bool Progress = false;
  for (size_t Blk = 0; Blk != P.Blocks.size() && !T.exhausted(); ++Blk) {
    Instruction *Term = nullptr;
    if (!P.Blocks[Blk].Insts.empty() &&
        P.Blocks[Blk].Insts.back().Op == Opcode::Br)
      Term = &P.Blocks[Blk].Insts.back();
    if (!Term)
      continue;
    for (uint32_t Target : {Term->Target0, Term->Target1}) {
      Function Candidate = P;
      Instruction &CTerm = Candidate.Blocks[Blk].Insts.back();
      CTerm.Op = Opcode::Jmp;
      CTerm.Src1 = NoReg;
      CTerm.Target0 = Target;
      CTerm.Target1 = NoBlock;
      if (T.stillFails(Candidate)) {
        P = std::move(Candidate);
        Progress = true;
        break; // This block's terminator is now a jmp.
      }
    }
  }
  return Progress;
}

/// Pass 2: drop blocks unreachable from the entry, renumbering targets.
/// Purely structural (no predicate call needed to stay sound — removing
/// unreachable code cannot change behaviour — but we still confirm the
/// failure so the reduction never masks a reachability-sensitive bug in
/// the system under test, e.g. the encoder's unreachable-block repair).
bool dropUnreachable(Function &P, Tester &T) {
  if (P.Blocks.empty() || T.exhausted())
    return false;
  std::vector<uint8_t> Reachable(P.Blocks.size(), 0);
  std::vector<uint32_t> Work{0};
  Reachable[0] = 1;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    const Instruction *Term = P.Blocks[B].terminator();
    if (!Term)
      continue;
    for (uint32_t S : {Term->Target0, Term->Target1})
      if (S != NoBlock && S < P.Blocks.size() && !Reachable[S]) {
        Reachable[S] = 1;
        Work.push_back(S);
      }
  }
  if (std::all_of(Reachable.begin(), Reachable.end(),
                  [](uint8_t R) { return R != 0; }))
    return false;

  std::vector<uint32_t> NewIndex(P.Blocks.size(), NoBlock);
  Function Candidate;
  Candidate.Name = P.Name;
  Candidate.NumRegs = P.NumRegs;
  Candidate.MemWords = P.MemWords;
  Candidate.NumSpillSlots = P.NumSpillSlots;
  for (uint32_t B = 0; B != P.Blocks.size(); ++B)
    if (Reachable[B]) {
      NewIndex[B] = static_cast<uint32_t>(Candidate.Blocks.size());
      Candidate.Blocks.push_back(P.Blocks[B]);
    }
  for (BasicBlock &BB : Candidate.Blocks)
    for (Instruction &I : BB.Insts) {
      if (I.Target0 != NoBlock)
        I.Target0 = NewIndex[I.Target0];
      if (I.Target1 != NoBlock)
        I.Target1 = NewIndex[I.Target1];
    }
  if (T.stillFails(Candidate)) {
    P = std::move(Candidate);
    return true;
  }
  return false;
}

/// Pass 3: ddmin-style deletion of contiguous non-terminator instruction
/// runs, per block, halving chunk sizes down to 1.
bool deleteInstructions(Function &P, Tester &T) {
  bool Progress = false;
  for (size_t Blk = 0; Blk != P.Blocks.size() && !T.exhausted(); ++Blk) {
    // The terminator (last instruction) is never deleted.
    size_t Deletable = P.Blocks[Blk].Insts.size();
    if (Deletable != 0 && P.Blocks[Blk].Insts.back().isTerminator())
      --Deletable;
    size_t Chunk = std::max<size_t>(Deletable / 2, 1);
    while (Chunk >= 1 && Deletable != 0 && !T.exhausted()) {
      bool DeletedAtThisSize = false;
      for (size_t Start = 0; Start < Deletable && !T.exhausted();) {
        size_t Len = std::min(Chunk, Deletable - Start);
        Function Candidate = P;
        auto &Insts = Candidate.Blocks[Blk].Insts;
        Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Start),
                    Insts.begin() + static_cast<ptrdiff_t>(Start + Len));
        if (T.stillFails(Candidate)) {
          P = std::move(Candidate);
          Deletable -= Len;
          Progress = DeletedAtThisSize = true;
          // Start stays: the next run shifted into place.
        } else {
          Start += Len;
        }
      }
      if (Chunk == 1)
        break;
      Chunk = DeletedAtThisSize ? Chunk : Chunk / 2;
    }
  }
  return Progress;
}

} // namespace

MinimizeResult dra::minimizeProgram(const Function &P,
                                    const FailPredicate &StillFails,
                                    size_t MaxSteps) {
  MinimizeResult Out;
  Out.Reduced = P;
  Tester T(StillFails, MaxSteps);
  bool Progress = true;
  while (Progress && !T.exhausted()) {
    Progress = false;
    Progress |= simplifyTerminators(Out.Reduced, T);
    Progress |= dropUnreachable(Out.Reduced, T);
    Progress |= deleteInstructions(Out.Reduced, T);
  }
  Out.Steps = T.steps();
  return Out;
}
