//===- fuzz/Minimizer.h - Delta-debugging program shrinker ------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A delta-debugging minimizer for failing fuzz cases. Given a program and
/// a predicate "does this program still fail the oracle?", it greedily
/// applies structure-preserving reductions and keeps every candidate the
/// predicate confirms:
///
///  1. terminator simplification — rewrite a conditional branch to an
///     unconditional jump (either arm), shedding CFG edges;
///  2. unreachable-block elimination — drop blocks no longer reachable
///     from the entry and renumber branch targets;
///  3. instruction deletion — ddmin-style: remove contiguous runs of
///     non-terminator instructions per block, halving the chunk size down
///     to single instructions.
///
/// The passes iterate to a fixpoint under a predicate-invocation budget.
/// Every candidate is verified (verifyFunction) before the predicate runs,
/// so the minimizer can never hand an ill-formed program to the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FUZZ_MINIMIZER_H
#define DRA_FUZZ_MINIMIZER_H

#include "ir/Function.h"

#include <cstddef>
#include <functional>

namespace dra {

/// Returns true when the candidate program still exhibits the failure.
using FailPredicate = std::function<bool(const Function &)>;

/// Minimization outcome.
struct MinimizeResult {
  /// The smallest failing program found (the input if nothing shrank).
  Function Reduced;
  /// Predicate invocations spent (the dominant cost: each one re-runs the
  /// pipeline and the oracle).
  size_t Steps = 0;
};

/// Shrinks \p P while \p StillFails holds, spending at most \p MaxSteps
/// predicate invocations. \p P itself must satisfy the predicate.
MinimizeResult minimizeProgram(const Function &P,
                               const FailPredicate &StillFails,
                               size_t MaxSteps = 600);

} // namespace dra

#endif // DRA_FUZZ_MINIMIZER_H
