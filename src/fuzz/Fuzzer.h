//===- fuzz/Fuzzer.h - Randomized differential-testing harness --*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dra-fuzz case engine. A *case* is one point of the sweep
///
///   seeded ProgramGen profile × EncodingConfig variant × scheme
///
/// where the config variants cover {lowend, vliw} × {SrcFirst, DstFirst}
/// × {with, without SpecialRegs} and the scheme axis cycles the three
/// differential pipelines (remap, select, coalesce) plus a
/// `remap-parallel` variant — the remap pipeline with the multi-start
/// search sharded over RemapJobs pool workers, so the lockstep oracle
/// exercises the parallel incremental search end-to-end — a
/// `cache-replay` variant that compiles the case cold, then again through
/// a warm result cache (driver/ResultCache.h), requiring the replayed
/// function and its encoded stream to be bit-identical to the fresh
/// compile, and a `csrc` variant whose program comes from the mini-C
/// frontend (src/frontend/) instead of ProgramGen: a seeded random
/// source file is generated, compiled through tokenizer/parser/lowering,
/// and the lowered function runs the same checks under one of the three
/// differential pipelines (rotated by seed), and a `portfolio` variant
/// that compiles through a two-worker scheme-portfolio race
/// (core/Portfolio.h) and additionally requires the committed result to
/// be exactly what a sequential sweep of the arms would pick:
/// cost-minimal under the winner rule, lowest arm index on ties, and
/// bit-identical to that arm's lone compile. For each case the harness:
///
///  1. generates the program and runs the full pipeline, checking the
///     end-to-end fingerprint (allocation may legally restructure code, so
///     only final state is compared here);
///  2. re-encodes the allocated function, requires `verifyDecodable`,
///     decodes, and checks `stripSetLastReg(decode(encode(F))) == F`
///     field for field;
///  3. runs the lockstep interpreter oracle (fuzz/Oracle.h) between the
///     allocated function and its round trip;
///  4. checks structural invariants (fuzz/Invariants.h): remap permutation
///     well-formedness, interference preservation under a fresh remap
///     probe, move legality after coalescing.
///
/// On failure the case is shrunk with the delta-debugging minimizer
/// (fuzz/Minimizer.h) under the same predicate, and the reduced program is
/// returned for repro serialization (fuzz/Repro.h).
///
/// Fault injection (`InjectFault`) corrupts the encoder's output in
/// controlled ways so the harness can be mutation-tested: a harness that
/// cannot catch a deliberately broken encoder is not guarding anything.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FUZZ_FUZZER_H
#define DRA_FUZZ_FUZZER_H

#include "core/Pipeline.h"
#include "ir/Function.h"
#include "workloads/ProgramGen.h"

#include <cstdint>
#include <optional>
#include <string>

namespace dra {

/// Deliberate encoder corruption, applied between encode and decode.
/// Testing-only: proves the oracle catches real encoder bugs.
enum class InjectFault : uint8_t {
  None,
  /// Delete the first block-head set_last_reg repair (join repair).
  DropJoinRepair,
  /// Flip the low bit of the first nonzero difference code.
  CorruptFieldCode,
  /// Drop the first delayed (Aux != 0) set_last_reg.
  DropDelayedSlr,
};

const char *injectFaultName(InjectFault F);
bool parseInjectFault(const std::string &Name, InjectFault &Out);

/// One fuzz case, fully determined by (BaseSeed, Index).
struct FuzzCase {
  uint64_t Seed = 0;       ///< Program-generator seed.
  uint64_t Index = 0;      ///< Sweep index (names the case).
  Scheme S = Scheme::Remap;
  EncodingConfig Enc;
  ProgramProfile Profile;
  uint64_t StepLimit = 2'000'000;
  InjectFault Fault = InjectFault::None;
  /// Worker threads for the remap search (the `remap-parallel` scheme
  /// variant sets 3; everything else runs on the case's own thread).
  /// Results are bit-identical either way — the variant exists to drive
  /// the parallel search code path under the oracle and sanitizers.
  unsigned RemapJobs = 1;
  /// Compile the case twice through a fresh in-memory result cache (cold
  /// miss, then warm hit) and require the replayed result — function and
  /// encoded stream — to match the fresh compile exactly (the
  /// `cache-replay` scheme variant sets this).
  bool CacheReplay = false;
  /// The `csrc` scheme variant: the case's program is CSource compiled
  /// through the mini-C frontend instead of a ProgramGen function.
  /// Failures skip delta debugging (the repro embeds the source itself,
  /// already small by generation profile).
  bool CSrc = false;
  std::string CSource;
  /// The `portfolio` scheme variant: compile through a concurrent
  /// scheme-portfolio race instead of a single pipeline, then require
  /// the committed result to match the best sequential arm exactly
  /// (cost, tie-break, and encoded bytes). The usual oracle checks run
  /// on the raced winner.
  bool Portfolio = false;
  unsigned PortfolioJobs = 1;

  /// Stable human-readable id, e.g. "s42-coalesce-vliw32-dst-sp".
  std::string name() const;
};

/// Derives sweep case \p Index for \p BaseSeed: scheme and config variant
/// cycle through the full cross product; program shape varies with the
/// derived seed. Pure function of its arguments (parallel and serial
/// sweeps agree).
FuzzCase caseForIndex(uint64_t BaseSeed, uint64_t Index);

/// Number of distinct (scheme × config) variants `caseForIndex` cycles
/// through; a sweep of this many consecutive indices covers the matrix.
unsigned caseMatrixSize();

/// Name of the scheme-variant slot case \p Index occupies ("remap",
/// "select", "coalesce", "remap-parallel", "cache-replay", "csrc" or
/// "portfolio").
/// Pure function of the index (the slot is Index mod the variant count).
const char *caseVariantName(uint64_t Index);

/// Runs every check on \p P under case \p FC. Returns std::nullopt when
/// all pass, otherwise a description of the first failing check. When
/// \p DynInsts is non-null it receives the reference execution's dynamic
/// instruction count (a work metric for the sweep).
std::optional<std::string> checkProgram(const Function &P,
                                        const FuzzCase &FC,
                                        uint64_t *DynInsts = nullptr);

/// Outcome of one case.
struct FuzzCaseResult {
  bool Ok = true;
  /// First failing check (empty when Ok).
  std::string Detail;
  /// The generated program, minimized when minimization ran.
  Function Program;
  /// Delta-debugging predicate invocations spent.
  size_t MinimizeSteps = 0;
  /// Dynamic instructions the reference execution retired (work metric).
  uint64_t OracleDynInsts = 0;
};

/// Generates the case's program, checks it, and on failure shrinks it.
/// \p MinimizeBudget bounds the delta-debugging predicate invocations
/// (0 disables minimization).
FuzzCaseResult runFuzzCase(const FuzzCase &FC, size_t MinimizeBudget = 600);

} // namespace dra

#endif // DRA_FUZZ_FUZZER_H
