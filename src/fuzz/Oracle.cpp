//===- fuzz/Oracle.cpp - Lockstep interpreter oracle ----------------------===//

#include "fuzz/Oracle.h"

#include <algorithm>
#include <sstream>
#include <vector>

using namespace dra;

namespace {

/// Compact record of one executed (non-SetLastReg) instruction; exactly
/// the fields the oracle compares, plus InstIdx for diagnostics.
struct TraceRec {
  uint32_t Block;
  uint32_t InstIdx;
  Opcode Op;
  uint64_t MemAddr;
  bool BranchTaken;

  bool comparable(const TraceRec &O) const {
    return Block == O.Block && Op == O.Op && MemAddr == O.MemAddr &&
           BranchTaken == O.BranchTaken;
  }
};

/// FNV-1a fold of one record into \p Hash (InstIdx excluded — it shifts
/// under SetLastReg insertion).
void foldHash(uint64_t &Hash, const TraceRec &R) {
  auto Mix = [&](uint64_t Bits) {
    for (int Byte = 0; Byte != 8; ++Byte) {
      Hash ^= (Bits >> (Byte * 8)) & 0xff;
      Hash *= 1099511628211ull;
    }
  };
  Mix(R.Block);
  Mix(static_cast<uint64_t>(R.Op));
  Mix(R.MemAddr);
  Mix(R.BranchTaken);
}

std::string describe(const TraceRec &R) {
  std::ostringstream OS;
  OS << opcodeName(R.Op) << " @ bb" << R.Block << "[" << R.InstIdx << "]"
     << " mem=" << R.MemAddr << " taken=" << (R.BranchTaken ? 1 : 0);
  return OS.str();
}

/// One side's execution: final state, bounded trace prefix, full-stream
/// hash and event count.
struct SideTrace {
  ExecResult Result;
  std::vector<TraceRec> Prefix;
  uint64_t Hash = 1469598103934665603ull;
  uint64_t Events = 0;
};

SideTrace run(const Function &F, const OracleOptions &O) {
  SideTrace S;
  S.Prefix.reserve(std::min<size_t>(O.MaxTraceEvents, 4096));
  S.Result = interpret(F, O.StepLimit, [&](const TraceEvent &Ev) {
    if (Ev.Inst->Op == Opcode::SetLastReg)
      return;
    TraceRec R{Ev.Block, Ev.InstIdx, Ev.Inst->Op, Ev.MemAddr,
               Ev.BranchTaken};
    if (S.Prefix.size() < O.MaxTraceEvents)
      S.Prefix.push_back(R);
    foldHash(S.Hash, R);
    ++S.Events;
  });
  return S;
}

} // namespace

OracleResult dra::compareLockstep(const Function &Ref, const Function &Cand,
                                  const OracleOptions &O) {
  OracleResult Out;
  SideTrace A = run(Ref, O);
  SideTrace B = run(Cand, O);
  Out.Ref = A.Result;
  Out.Cand = B.Result;

  auto Fail = [&](const std::string &Msg) {
    Out.Match = false;
    Out.Divergence = Msg;
    return Out;
  };

  // Lockstep trace comparison first: the earliest divergence is the most
  // useful diagnostic (final-state mismatches are downstream symptoms).
  size_t Common = std::min(A.Prefix.size(), B.Prefix.size());
  for (size_t I = 0; I != Common; ++I) {
    if (!A.Prefix[I].comparable(B.Prefix[I])) {
      Out.EventIndex = I;
      return Fail("trace event " + std::to_string(I) + " diverges: ref {" +
                  describe(A.Prefix[I]) + "} vs cand {" +
                  describe(B.Prefix[I]) + "}");
    }
  }
  if (A.Events != B.Events)
    return Fail("executed event counts differ: ref " +
                std::to_string(A.Events) + " vs cand " +
                std::to_string(B.Events));
  if (A.Hash != B.Hash)
    return Fail("trace streams diverge past the retained prefix (hash "
                "mismatch over " +
                std::to_string(A.Events) + " events)");
  if (A.Result.HitStepLimit != B.Result.HitStepLimit)
    return Fail("step-limit flag differs");
  if (A.Result.ReturnValue != B.Result.ReturnValue)
    return Fail("return values differ: ref " +
                std::to_string(A.Result.ReturnValue) + " vs cand " +
                std::to_string(B.Result.ReturnValue));
  if (A.Result.MemChecksum != B.Result.MemChecksum)
    return Fail("final data-array checksums differ");
  if (A.Result.DynInsts != B.Result.DynInsts)
    return Fail("dynamic instruction counts differ: ref " +
                std::to_string(A.Result.DynInsts) + " vs cand " +
                std::to_string(B.Result.DynInsts));
  return Out;
}
