//===- fuzz/Oracle.h - Lockstep interpreter oracle --------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-testing oracle: two structurally comparable functions
/// (the allocated program and its encode → decode → strip round trip) are
/// interpreted with the same step limit and compared
///
///  * on their final architectural state — return value, data-array
///    checksum, executed-instruction count, step-limit flag — and
///  * per executed instruction ("lockstep"): block index, opcode,
///    effective memory address and branch direction must agree event for
///    event.
///
/// SetLastReg pseudo instructions are invisible to the oracle (they have
/// no architectural effect), and instruction indices within a block are
/// deliberately not compared — so a function may be checked against a
/// version of itself with set_last_reg annotations inserted or removed.
/// Trace memory is bounded: the first `MaxTraceEvents` events are
/// retained verbatim so the first divergence can be reported precisely;
/// the full streams are additionally folded into running hashes so a
/// divergence past the retained prefix is still detected.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FUZZ_ORACLE_H
#define DRA_FUZZ_ORACLE_H

#include "interp/Interpreter.h"
#include "ir/Function.h"

#include <cstdint>
#include <string>

namespace dra {

/// Oracle knobs.
struct OracleOptions {
  /// Step limit applied identically to both executions.
  uint64_t StepLimit = 2'000'000;
  /// Trace events retained verbatim per side for precise first-divergence
  /// reporting; events beyond the cap only feed the running hash.
  size_t MaxTraceEvents = 1u << 16;
};

/// Outcome of one lockstep comparison.
struct OracleResult {
  bool Match = true;
  /// Human-readable description of the first divergence (empty on match).
  std::string Divergence;
  /// Index of the first diverging trace event, or ~0ull if the divergence
  /// is in the final state only (or past the retained prefix).
  uint64_t EventIndex = ~0ull;
  ExecResult Ref;
  ExecResult Cand;
};

/// Interprets \p Ref and \p Cand under identical limits and compares final
/// state plus the per-instruction trace. The two functions must share the
/// same block structure (they may differ in SetLastReg annotations).
OracleResult compareLockstep(const Function &Ref, const Function &Cand,
                             const OracleOptions &O = {});

} // namespace dra

#endif // DRA_FUZZ_ORACLE_H
