//===- fuzz/Repro.cpp - Self-contained failure reproductions --------------===//

#include "fuzz/Repro.h"

#include "ir/Parser.h"

#include <sstream>

using namespace dra;

namespace {

const char *shortSchemeName(Scheme S) {
  switch (S) {
  case Scheme::Baseline:
    return "baseline";
  case Scheme::OSpill:
    return "ospill";
  case Scheme::Remap:
    return "remap";
  case Scheme::Select:
    return "select";
  case Scheme::Coalesce:
    return "coalesce";
  }
  return "<bad>";
}

bool parseScheme(const std::string &Name, Scheme &Out) {
  for (Scheme S : {Scheme::Baseline, Scheme::OSpill, Scheme::Remap,
                   Scheme::Select, Scheme::Coalesce})
    if (Name == shortSchemeName(S)) {
      Out = S;
      return true;
    }
  return false;
}

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// Splits "a,b,c" into numbers; empty string yields an empty list.
bool parseRegList(const std::string &S, std::vector<RegId> &Out) {
  Out.clear();
  if (S.empty() || S == "none")
    return true;
  std::stringstream In(S);
  std::string Item;
  while (std::getline(In, Item, ',')) {
    try {
      Out.push_back(static_cast<RegId>(std::stoul(Item)));
    } catch (...) {
      return false;
    }
  }
  return true;
}

/// Parses "key=value" tokens of the `# enc:` directive into \p C.
bool parseEncToken(const std::string &Tok, EncodingConfig &C) {
  size_t Eq = Tok.find('=');
  if (Eq == std::string::npos)
    return false;
  std::string Key = Tok.substr(0, Eq);
  std::string Val = Tok.substr(Eq + 1);
  try {
    if (Key == "regn")
      C.RegN = static_cast<unsigned>(std::stoul(Val));
    else if (Key == "diffn")
      C.DiffN = static_cast<unsigned>(std::stoul(Val));
    else if (Key == "diffw")
      C.DiffW = static_cast<unsigned>(std::stoul(Val));
    else if (Key == "order") {
      if (Val == "src")
        C.Order = AccessOrder::SrcFirst;
      else if (Val == "dst")
        C.Order = AccessOrder::DstFirst;
      else
        return false;
    } else if (Key == "specials")
      return parseRegList(Val, C.SpecialRegs);
    else
      return true; // Unknown key: ignore for forward compatibility.
  } catch (...) {
    return false;
  }
  return true;
}

} // namespace

std::string dra::writeRepro(const FuzzCase &FC, const Function &P) {
  std::ostringstream Out;
  Out << "# dra-fuzz repro v1\n";
  Out << "# case: " << FC.name() << "\n";
  Out << "# seed: " << FC.Seed << "\n";
  Out << "# index: " << FC.Index << "\n";
  Out << "# scheme: " << shortSchemeName(FC.S) << "\n";
  Out << "# enc: regn=" << FC.Enc.RegN << " diffn=" << FC.Enc.DiffN
      << " diffw=" << FC.Enc.DiffW << " order="
      << (FC.Enc.Order == AccessOrder::SrcFirst ? "src" : "dst");
  Out << " specials=";
  if (FC.Enc.SpecialRegs.empty())
    Out << "none";
  else
    for (size_t I = 0; I != FC.Enc.SpecialRegs.size(); ++I)
      Out << (I ? "," : "") << unsigned(FC.Enc.SpecialRegs[I]);
  Out << "\n";
  Out << "# steplimit: " << FC.StepLimit << "\n";
  Out << "# remapjobs: " << FC.RemapJobs << "\n";
  Out << "# cachereplay: " << (FC.CacheReplay ? 1 : 0) << "\n";
  Out << "# fault: " << injectFaultName(FC.Fault) << "\n";
  if (FC.Portfolio)
    Out << "# portfolio: race jobs=" << FC.PortfolioJobs << "\n";
  if (FC.CSrc) {
    // The csrc variant's ground truth is the mini-C source: replay
    // recompiles it through the frontend. One directive per source line
    // keeps the file a flat `#`-header + IR-body document; the IR body
    // below is the lowered form, kept for human inspection and for
    // readers that predate this directive.
    std::istringstream Src(FC.CSource);
    std::string SrcLine;
    while (std::getline(Src, SrcLine))
      Out << "# csrc: " << SrcLine << "\n";
  }
  Out << printFunction(P);
  return Out.str();
}

bool dra::loadRepro(const std::string &Text, FuzzCase &FC, Function &P,
                    std::string *Err) {
  FC = FuzzCase();
  std::istringstream In(Text);
  std::string Line;
  std::string Body;
  bool SawMagic = false;
  bool InBody = false;
  while (std::getline(In, Line)) {
    if (InBody || Line.empty() || Line[0] != '#') {
      // First non-directive line starts the IR body.
      InBody = InBody || !Line.empty();
      if (InBody)
        Body += Line + "\n";
      continue;
    }
    std::istringstream LS(Line);
    std::string Hash, Key;
    LS >> Hash >> Key;
    if (Key == "dra-fuzz") {
      SawMagic = true;
    } else if (Key == "seed:") {
      LS >> FC.Seed;
    } else if (Key == "index:") {
      LS >> FC.Index;
    } else if (Key == "steplimit:") {
      LS >> FC.StepLimit;
    } else if (Key == "remapjobs:") {
      LS >> FC.RemapJobs;
      if (FC.RemapJobs == 0)
        return fail(Err, "repro: remapjobs must be >= 1");
    } else if (Key == "cachereplay:") {
      unsigned V = 0;
      LS >> V;
      if (V > 1)
        return fail(Err, "repro: cachereplay must be 0 or 1");
      FC.CacheReplay = V != 0;
    } else if (Key == "scheme:") {
      std::string Name;
      LS >> Name;
      if (!parseScheme(Name, FC.S))
        return fail(Err, "repro: unknown scheme '" + Name + "'");
    } else if (Key == "fault:") {
      std::string Name;
      LS >> Name;
      if (!parseInjectFault(Name, FC.Fault))
        return fail(Err, "repro: unknown fault '" + Name + "'");
    } else if (Key == "enc:") {
      std::string Tok;
      while (LS >> Tok)
        if (!parseEncToken(Tok, FC.Enc))
          return fail(Err, "repro: bad enc token '" + Tok + "'");
    } else if (Key == "portfolio:") {
      // `# portfolio: race jobs=2` — the mode token is mandatory and
      // checked; the key=value tail follows the enc: conventions
      // (unknown keys ignored, malformed tokens rejected).
      std::string Mode;
      LS >> Mode;
      if (Mode != "race" && Mode != "choose")
        return fail(Err, "repro: unknown portfolio mode '" + Mode + "'");
      FC.Portfolio = true;
      std::string Tok;
      while (LS >> Tok) {
        size_t Eq = Tok.find('=');
        if (Eq == std::string::npos)
          return fail(Err, "repro: bad portfolio token '" + Tok + "'");
        std::string K = Tok.substr(0, Eq);
        std::string V = Tok.substr(Eq + 1);
        if (K == "jobs") {
          size_t Pos = 0;
          unsigned long N = 0;
          try {
            N = std::stoul(V, &Pos);
          } catch (...) {
            return fail(Err, "repro: bad portfolio token '" + Tok + "'");
          }
          if (Pos != V.size() || N == 0)
            return fail(Err,
                        "repro: portfolio jobs must be a positive count");
          FC.PortfolioJobs = static_cast<unsigned>(N);
        }
        // Unknown key=value: ignore for forward compatibility.
      }
    } else if (Key == "csrc:") {
      // Everything after the "# csrc: " prefix is one verbatim source
      // line (substr, not LS: token reads would eat the indentation).
      FC.CSrc = true;
      FC.CSource += Line.size() > 8 ? Line.substr(8) : "";
      FC.CSource += "\n";
    }
    // Any other directive (e.g. "# case:") is informational.
  }
  if (!SawMagic)
    return fail(Err, "repro: missing '# dra-fuzz repro' header");
  if (!FC.Enc.valid())
    return fail(Err, "repro: encoding config invalid (DiffN + specials "
                     "must fit in 2^DiffW)");
  std::string ParseErr;
  std::optional<Function> F = parseFunction(Body, &ParseErr);
  if (!F)
    return fail(Err, "repro: " + ParseErr);
  P = std::move(*F);
  return true;
}
