//===- fuzz/Repro.h - Self-contained failure reproductions ------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization for failing fuzz cases. A repro file is self-contained:
/// it carries the full case configuration (scheme, encoding, step limit,
/// fault injection) as `#`-prefixed header directives, followed by the
/// (minimized) program in the textual IR syntax of ir/Parser.h — so
/// `dra-fuzz --repro=FILE` replays the exact failure with no other state.
///
///   # dra-fuzz repro v1
///   # seed: 8417296523187197225
///   # index: 42
///   # scheme: coalesce
///   # enc: regn=32 diffn=30 diffw=5 order=dst specials=31,30
///   # steplimit: 2000000
///   # fault: none
///   func fz42 regs=34 mem=64 spills=0
///   ...
///
/// Unknown `#` directives are ignored (forward compatibility); missing
/// ones keep their defaults. The embedded program takes the place of the
/// case's generated one, so replay never re-runs ProgramGen.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FUZZ_REPRO_H
#define DRA_FUZZ_REPRO_H

#include "fuzz/Fuzzer.h"

#include <string>

namespace dra {

/// Serializes \p FC and \p P as a repro file (header + textual IR).
std::string writeRepro(const FuzzCase &FC, const Function &P);

/// Parses a repro file. On success fills \p FC and \p P and returns true;
/// on failure returns false with a diagnostic in \p Err (if non-null).
bool loadRepro(const std::string &Text, FuzzCase &FC, Function &P,
               std::string *Err = nullptr);

} // namespace dra

#endif // DRA_FUZZ_REPRO_H
