//===- fuzz/Invariants.h - Structural invariant checks ----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural invariants the differential-testing harness checks in
/// addition to the interpreter oracle (fuzz/Oracle.h). The oracle catches
/// any semantic divergence; these checks catch latent bugs that happen not
/// to change behaviour on the sampled inputs — an interference edge lost
/// by remapping, an identity move the coalescer failed to delete, a decode
/// that reconstructs the right values through the wrong codes.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_FUZZ_INVARIANTS_H
#define DRA_FUZZ_INVARIANTS_H

#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <string>
#include <vector>

namespace dra {

/// Field-for-field structural equality of two functions: same block count,
/// same instruction lists (opcode, every register field, immediate,
/// targets, delay). On mismatch returns false and describes the first
/// difference in \p Why (if non-null).
bool functionsIdentical(const Function &A, const Function &B,
                        std::string *Why = nullptr);

/// Checks \p Perm is a bijection on [0, C.RegN) that pins every special
/// register to itself — the property differential remapping relies on to
/// preserve the allocator's interference guarantees (Section 5).
bool checkPermutation(const std::vector<RegId> &Perm,
                      const EncodingConfig &C, std::string *Why = nullptr);

/// Interference preservation: builds the interference graphs of \p Before
/// and \p After (both allocated functions over the same register universe)
/// and checks that mapping every edge of Before through \p Perm yields
/// exactly the edge set of After. Remapping and recoloring must never
/// create or lose an interference.
bool checkInterferencePreserved(const Function &Before,
                                const Function &After,
                                const std::vector<RegId> &Perm,
                                std::string *Why = nullptr);

/// Move legality after coalescing: a committed coalescence deletes its
/// move, so no identity move (mov rX, rX) may survive in \p F.
bool checkMoveLegality(const Function &F, std::string *Why = nullptr);

} // namespace dra

#endif // DRA_FUZZ_INVARIANTS_H
