//===- ilp/CoverSolver.cpp - 0-1 covering ILP solver ----------------------===//

#include "ilp/CoverSolver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace dra;

namespace {

/// Mutable search state for the branch-and-bound.
class Search {
public:
  Search(const CoverProblem &P, uint64_t NodeBudget)
      : P(P), NodeBudget(NodeBudget) {
    size_t NumVars = P.Cost.size();
    VarState.assign(NumVars, Free);
    Remaining.resize(P.Constraints.size());
    FreeCount.resize(P.Constraints.size());
    ConstraintsOf.assign(NumVars, {});
    for (uint32_t C = 0; C != P.Constraints.size(); ++C) {
      const CoverConstraint &Con = P.Constraints[C];
      assert(Con.Need <= static_cast<int>(Con.Vars.size()) &&
             "unsatisfiable constraint");
      Remaining[C] = Con.Need;
      FreeCount[C] = static_cast<int>(Con.Vars.size());
      for (uint32_t V : Con.Vars) {
        assert(V < NumVars && "variable index out of range");
        ConstraintsOf[V].push_back(C);
      }
    }
    Best.Selected.assign(NumVars, 0);
    Best.TotalCost = std::numeric_limits<double>::infinity();
  }

  CoverSolution run() {
    seedGreedyIncumbent();
    Exhausted = false;
    dfs(0.0);
    CoverSolution Out;
    Out.Selected = Best.Selected;
    Out.TotalCost = Best.TotalCost;
    Out.Optimal = !Exhausted;
    Out.NodesExplored = Nodes;
    return Out;
  }

private:
  enum State : uint8_t { Free, In, Out };

  const CoverProblem &P;
  uint64_t NodeBudget;
  uint64_t Nodes = 0;
  bool Exhausted = false;

  std::vector<uint8_t> VarState;
  std::vector<int> Remaining; // Unmet demand per constraint.
  std::vector<int> FreeCount; // Free variables per constraint.
  std::vector<std::vector<uint32_t>> ConstraintsOf;

  struct Incumbent {
    std::vector<uint8_t> Selected;
    double TotalCost;
  } Best;

  /// Greedy multicover: repeatedly select the variable with the highest
  /// unmet-demand coverage per unit cost. Establishes the initial upper
  /// bound (and guarantees a feasible answer even if the budget runs out).
  void seedGreedyIncumbent() {
    std::vector<int> Need(Remaining);
    std::vector<uint8_t> Chosen(P.Cost.size(), 0);
    double Total = 0;
    for (;;) {
      bool AnyUnmet = false;
      for (int N : Need)
        AnyUnmet |= N > 0;
      if (!AnyUnmet)
        break;
      double BestScore = -1;
      uint32_t BestVar = ~0u;
      for (uint32_t V = 0; V != P.Cost.size(); ++V) {
        if (Chosen[V])
          continue;
        int Covers = 0;
        for (uint32_t C : ConstraintsOf[V])
          Covers += Need[C] > 0;
        if (Covers == 0)
          continue;
        double Score = static_cast<double>(Covers) /
                       std::max(P.Cost[V], 1e-9);
        if (Score > BestScore) {
          BestScore = Score;
          BestVar = V;
        }
      }
      assert(BestVar != ~0u && "greedy stuck on satisfiable instance");
      Chosen[BestVar] = 1;
      Total += P.Cost[BestVar];
      for (uint32_t C : ConstraintsOf[BestVar])
        --Need[C];
    }
    Best.Selected = Chosen;
    Best.TotalCost = Total;
  }

  /// Admissible lower bound on the extra cost needed from the current
  /// partial assignment: the most expensive single constraint to finish
  /// (cheapest Remaining[C] free variables within it).
  double lowerBound() const {
    double Bound = 0;
    std::vector<double> Costs;
    for (uint32_t C = 0; C != P.Constraints.size(); ++C) {
      if (Remaining[C] <= 0)
        continue;
      Costs.clear();
      for (uint32_t V : P.Constraints[C].Vars)
        if (VarState[V] == Free)
          Costs.push_back(P.Cost[V]);
      std::sort(Costs.begin(), Costs.end());
      double Sum = 0;
      for (int I = 0; I != Remaining[C]; ++I)
        Sum += Costs[static_cast<size_t>(I)];
      Bound = std::max(Bound, Sum);
    }
    return Bound;
  }

  bool selectVar(uint32_t V, std::vector<uint32_t> &Trail) {
    VarState[V] = In;
    Trail.push_back(V);
    for (uint32_t C : ConstraintsOf[V]) {
      --Remaining[C];
      --FreeCount[C];
    }
    return true;
  }

  /// Excludes \p V; returns false if some constraint became unsatisfiable
  /// (the state change is still fully applied and must be undone by the
  /// caller via the trail).
  bool excludeVar(uint32_t V, std::vector<uint32_t> &Trail) {
    VarState[V] = Out;
    Trail.push_back(V);
    bool Feasible = true;
    for (uint32_t C : ConstraintsOf[V]) {
      --FreeCount[C];
      Feasible &= FreeCount[C] >= Remaining[C];
    }
    return Feasible;
  }

  void undo(std::vector<uint32_t> &Trail, size_t From) {
    for (size_t I = Trail.size(); I > From; --I) {
      uint32_t V = Trail[I - 1];
      bool WasIn = VarState[V] == In;
      VarState[V] = Free;
      for (uint32_t C : ConstraintsOf[V]) {
        ++FreeCount[C];
        if (WasIn)
          ++Remaining[C];
      }
    }
    Trail.resize(From);
  }

  /// Unit propagation: constraints whose remaining demand equals their free
  /// count force all their free variables in. Returns false on conflict.
  bool propagate(std::vector<uint32_t> &Trail, double &Cost) {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (uint32_t C = 0; C != P.Constraints.size(); ++C) {
        if (Remaining[C] <= 0)
          continue;
        if (FreeCount[C] < Remaining[C])
          return false;
        if (FreeCount[C] != Remaining[C])
          continue;
        for (uint32_t V : P.Constraints[C].Vars) {
          if (VarState[V] != Free)
            continue;
          selectVar(V, Trail);
          Cost += P.Cost[V];
          Progress = true;
        }
      }
    }
    return true;
  }

  bool allSatisfied() const {
    for (int N : Remaining)
      if (N > 0)
        return false;
    return true;
  }

  void recordIncumbent(double Cost) {
    if (Cost >= Best.TotalCost)
      return;
    Best.TotalCost = Cost;
    for (uint32_t V = 0; V != VarState.size(); ++V)
      Best.Selected[V] = VarState[V] == In;
  }

  /// Picks the free variable covering the most unmet constraints per unit
  /// cost; returns ~0u when no unmet constraint has free variables.
  uint32_t pickBranchVar() const {
    double BestScore = -1;
    uint32_t BestVar = ~0u;
    for (uint32_t V = 0; V != VarState.size(); ++V) {
      if (VarState[V] != Free)
        continue;
      int Covers = 0;
      for (uint32_t C : ConstraintsOf[V])
        Covers += Remaining[C] > 0;
      if (Covers == 0)
        continue;
      double Score =
          static_cast<double>(Covers) / std::max(P.Cost[V], 1e-9);
      if (Score > BestScore) {
        BestScore = Score;
        BestVar = V;
      }
    }
    return BestVar;
  }

  void dfs(double Cost) {
    if (++Nodes > NodeBudget) {
      Exhausted = true;
      return;
    }
    std::vector<uint32_t> Trail;
    double LocalCost = Cost;
    if (!propagate(Trail, LocalCost)) {
      undo(Trail, 0);
      return;
    }
    if (LocalCost + lowerBound() >= Best.TotalCost - 1e-12) {
      // Even finishing optimally cannot beat the incumbent.
      if (allSatisfied())
        recordIncumbent(LocalCost);
      undo(Trail, 0);
      return;
    }
    if (allSatisfied()) {
      recordIncumbent(LocalCost);
      undo(Trail, 0);
      return;
    }
    uint32_t V = pickBranchVar();
    if (V == ~0u) {
      // Unmet constraints but no free vars: infeasible branch.
      undo(Trail, 0);
      return;
    }

    // Branch x_V = 1.
    size_t Mark = Trail.size();
    selectVar(V, Trail);
    dfs(LocalCost + P.Cost[V]);
    undo(Trail, Mark);

    // Branch x_V = 0.
    if (excludeVar(V, Trail))
      dfs(LocalCost);
    undo(Trail, Mark);

    undo(Trail, 0);
  }
};

} // namespace

CoverSolution dra::solveCover(const CoverProblem &P, uint64_t NodeBudget) {
  if (P.Constraints.empty() || P.Cost.empty()) {
    CoverSolution Out;
    Out.Selected.assign(P.Cost.size(), 0);
    Out.TotalCost = 0;
    // Constraints with positive need but no variables are unsatisfiable and
    // asserted against in Search; an empty constraint set is trivially
    // optimal.
    Out.Optimal = true;
    for (const CoverConstraint &C : P.Constraints) {
      (void)C;
      assert(C.Need <= 0 && "constraint over empty variable set");
    }
    return Out;
  }
  Search S(P, NodeBudget);
  return S.run();
}
