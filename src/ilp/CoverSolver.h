//===- ilp/CoverSolver.h - 0-1 covering ILP solver --------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small exact solver for 0-1 covering integer programs:
///
///     minimize    sum_j Cost[j] * x_j
///     subject to  sum_{j in Vars_i} x_j >= Need_i     for every constraint i
///     x_j in {0, 1}
///
/// The optimal-spill register allocator (Appel & George, PLDI 2001 — the
/// paper's third pipeline) expresses "at every program point at most K live
/// ranges may stay in registers" in exactly this shape: each program point
/// with pressure P > K contributes a constraint "spill at least P - K of the
/// ranges live here". The paper used CPLEX; we substitute a branch-and-bound
/// solver with constraint propagation and a greedy incumbent. For the
/// problem sizes the workloads produce it proves optimality; if the node
/// budget is exhausted it returns the best feasible solution found and
/// reports Optimal = false.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_ILP_COVERSOLVER_H
#define DRA_ILP_COVERSOLVER_H

#include <cstdint>
#include <vector>

namespace dra {

/// One covering constraint: at least \p Need of the listed variables must be
/// selected. Duplicate variable indices are not allowed.
struct CoverConstraint {
  std::vector<uint32_t> Vars;
  int Need = 0;
};

/// A covering ILP instance.
struct CoverProblem {
  /// Positive selection cost per variable.
  std::vector<double> Cost;
  std::vector<CoverConstraint> Constraints;
};

/// Solver output.
struct CoverSolution {
  /// Selected[j] == 1 iff variable j is chosen.
  std::vector<uint8_t> Selected;
  double TotalCost = 0;
  /// True if the search proved optimality before exhausting the budget.
  bool Optimal = false;
  /// Branch-and-bound nodes explored.
  uint64_t NodesExplored = 0;
};

/// Solves \p P. Every constraint must be satisfiable (Need <= Vars.size());
/// this is asserted. \p NodeBudget bounds the branch-and-bound search.
CoverSolution solveCover(const CoverProblem &P, uint64_t NodeBudget = 200000);

} // namespace dra

#endif // DRA_ILP_COVERSOLVER_H
